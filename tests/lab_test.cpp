// hidisc-lab orchestrator tests: parallel/serial equivalence, persistent
// result caching, content-key sensitivity, determinism, serialization
// round-trips, and the export formats.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>

#include "lab/export.hpp"
#include "lab/fingerprint.hpp"
#include "lab/plan.hpp"
#include "lab/result_cache.hpp"
#include "lab/runner.hpp"
#include "lab/serialize.hpp"
#include "lab/thread_pool.hpp"
#include "machine/machine.hpp"

namespace {

using namespace hidisc;
namespace fs = std::filesystem;

// A small but non-trivial plan: two workloads under all four presets plus
// one swept-config cell, at test scale so the whole file stays fast.
lab::ExperimentPlan tiny_plan() {
  lab::ExperimentPlan plan{"tiny", "lab_test plan", {}};
  for (const char* name : {"Pointer", "Update"})
    for (const auto preset : lab::all_presets())
      plan.cells.push_back(
          lab::Cell{lab::spec(name, workloads::Scale::Test), preset, {}, {},
                    ""});
  machine::MachineConfig slow;
  slow.mem = mem::MemConfig::with_latencies(16, 160);
  plan.cells.push_back(lab::Cell{lab::spec("Pointer", workloads::Scale::Test),
                                 machine::Preset::HiDISC, slow, {},
                                 "16/160"});
  return plan;
}

class TempDir {
 public:
  explicit TempDir(const char* tag)
      : path_((fs::temp_directory_path() /
               (std::string("hidisc_lab_test_") + tag + "_" +
                std::to_string(::getpid())))
                  .string()) {
    fs::remove_all(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

machine::Result nonzero_result() {
  machine::Result r;
  r.cycles = 123456789;
  r.instructions = 7654321;
  r.ipc = 0.62000000000000011;  // not exactly representable in few digits
  r.l1.reads = 42;
  r.l1.read_misses = 7;
  r.l2.writebacks = 9;
  r.branch.lookups = 1000;
  r.branch.mispredicts = 31;
  r.has_cp = true;
  r.cp.lod_stalls = 17;
  r.ldq.max_occupancy = 13;
  r.cmas_forks = 99;
  r.final_fork_lookahead = -384;
  return r;
}

TEST(LabPlan, NamedPlansEnumerate) {
  for (const auto& name : lab::plan_names()) {
    const auto plan = lab::make_plan(name, workloads::Scale::Test);
    EXPECT_EQ(plan.name, name);
    EXPECT_FALSE(plan.cells.empty()) << name;
  }
  EXPECT_EQ(lab::plan_fig8(workloads::Scale::Test).cells.size(), 7u * 4u);
  EXPECT_EQ(lab::plan_fig10(workloads::Scale::Test).cells.size(),
            2u * 4u * 4u);
  EXPECT_THROW(lab::make_plan("bogus", workloads::Scale::Test),
               std::out_of_range);
}

TEST(LabThreadPool, RunsEverySubmittedTask) {
  lab::ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i)
    pool.submit([&count] { count.fetch_add(1); });
  pool.wait();
  EXPECT_EQ(count.load(), 100);
  // Tasks may submit children; wait() must cover them too.
  pool.submit([&pool, &count] {
    for (int i = 0; i < 10; ++i) pool.submit([&count] { count.fetch_add(1); });
  });
  pool.wait();
  EXPECT_EQ(count.load(), 110);
}

TEST(LabSerialize, ResultRoundTripsExactly) {
  const machine::Result r = nonzero_result();
  const auto fields = lab::result_to_fields(r);
  const machine::Result back = lab::result_from_fields(fields);
  EXPECT_TRUE(lab::results_identical(r, back));
  EXPECT_EQ(back.cycles, r.cycles);
  EXPECT_EQ(back.ipc, r.ipc);  // bit-exact through %.17g
  EXPECT_EQ(back.cp.lod_stalls, r.cp.lod_stalls);
  EXPECT_TRUE(back.has_cp);
  EXPECT_FALSE(back.has_ap);
  // A differing field must be detected.
  machine::Result other = r;
  other.l2.writebacks++;
  EXPECT_FALSE(lab::results_identical(r, other));
}

TEST(LabResultCache, StoreThenLoadIdentical) {
  TempDir dir("cache_roundtrip");
  lab::ResultCache cache(dir.path());
  lab::CacheEntry entry{nonzero_result(), "Pointer", "HiDISC", 123456};
  const std::string key(32, 'a');
  EXPECT_FALSE(cache.load(key).has_value());
  ASSERT_TRUE(cache.store(key, entry));
  const auto back = cache.load(key);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(lab::results_identical(back->result, entry.result));
  EXPECT_EQ(back->workload, "Pointer");
  EXPECT_EQ(back->preset, "HiDISC");
  EXPECT_EQ(back->orig_dynamic_instructions, 123456u);
}

// ---- cache hardening: checksum footer, strict fields, quarantine -----------

// Reads the whole cache file for `key`; empty when absent.
std::string read_entry(const std::string& dir, const std::string& key) {
  std::ifstream in(fs::path(dir) / (key + ".result"));
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  return text;
}

void write_entry(const std::string& dir, const std::string& key,
                 const std::string& text) {
  std::ofstream out(fs::path(dir) / (key + ".result"), std::ios::trunc);
  out << text;
}

// Quarantine destinations carry a unique `.corrupt.<pid>.<n>` suffix so
// concurrent quarantining processes never clobber each other's specimen;
// match on the prefix rather than an exact name.
bool quarantined(const std::string& dir, const std::string& key) {
  const std::string prefix = key + ".result.corrupt.";
  for (const auto& e : fs::directory_iterator(dir))
    if (e.path().filename().string().rfind(prefix, 0) == 0) return true;
  return false;
}

TEST(LabResultCache, LineAlignedTruncationIsMissAndQuarantined) {
  // The v1 regression: a torn-but-line-aligned entry (e.g. a crashed
  // writer on a non-atomic filesystem) parsed cleanly and silently
  // zeroed every missing field.  It must now be a miss, and the file
  // must be moved aside so it stops being retried.
  TempDir dir("cache_truncated");
  lab::ResultCache cache(dir.path());
  const std::string key(32, 'b');
  ASSERT_TRUE(cache.store(key, {nonzero_result(), "w", "p", 1}));

  std::string text = read_entry(dir.path(), key);
  // Keep the header + first 6 lines, dropping the rest (and the footer).
  std::size_t pos = 0;
  for (int lines = 0; lines < 6; ++lines) pos = text.find('\n', pos) + 1;
  write_entry(dir.path(), key, text.substr(0, pos));

  EXPECT_FALSE(cache.load(key).has_value());
  EXPECT_TRUE(quarantined(dir.path(), key));
  // The quarantined file no longer shadows the slot: a fresh store+load
  // works again.
  ASSERT_TRUE(cache.store(key, {nonzero_result(), "w", "p", 1}));
  EXPECT_TRUE(cache.load(key).has_value());
}

TEST(LabResultCache, CorruptValueFailsChecksumAndQuarantines) {
  TempDir dir("cache_bitrot");
  lab::ResultCache cache(dir.path());
  const std::string key(32, 'c');
  ASSERT_TRUE(cache.store(key, {nonzero_result(), "w", "p", 1}));

  std::string text = read_entry(dir.path(), key);
  const auto at = text.find("cycles 123456789");
  ASSERT_NE(at, std::string::npos);
  text[at + 7] = '9';  // flip one digit; footer no longer matches
  write_entry(dir.path(), key, text);

  EXPECT_FALSE(cache.load(key).has_value());
  EXPECT_TRUE(quarantined(dir.path(), key));
}

TEST(LabResultCache, TornLineIsQuarantined) {
  TempDir dir("cache_torn");
  lab::ResultCache cache(dir.path());
  const std::string key(32, 'd');
  ASSERT_TRUE(cache.store(key, {nonzero_result(), "w", "p", 1}));

  // Cut mid-line: the last kept line has no "name value" shape.
  std::string text = read_entry(dir.path(), key);
  write_entry(dir.path(), key, text.substr(0, text.size() / 2 - 3));
  EXPECT_FALSE(cache.load(key).has_value());
  EXPECT_TRUE(quarantined(dir.path(), key));
}

TEST(LabResultCache, ValidChecksumButMissingFieldIsQuarantined) {
  // Third validation layer: a structurally intact entry (good footer)
  // whose field list is incomplete — e.g. written by an older binary
  // after a Result field was added — must not decode as a zeroed field.
  TempDir dir("cache_drift");
  lab::ResultCache cache(dir.path());
  const std::string key(32, 'e');
  std::string body =
      "hilab-result v2\nmeta.workload w\nmeta.preset p\n"
      "meta.orig_dyn_insts 1\ncycles 42\n";  // almost every field absent
  char footer[32];
  std::snprintf(footer, sizeof footer, "checksum %016llx",
                static_cast<unsigned long long>(lab::fnv1a64(body)));
  write_entry(dir.path(), key, body + footer + "\n");

  EXPECT_FALSE(cache.load(key).has_value());
  EXPECT_TRUE(quarantined(dir.path(), key));
}

TEST(LabResultCache, OldVersionHeaderIsPlainMissNotCorruption) {
  TempDir dir("cache_v1");
  lab::ResultCache cache(dir.path());
  const std::string key(32, 'f');
  write_entry(dir.path(), key, "hilab-result v1\ncycles 42\n");

  EXPECT_FALSE(cache.load(key).has_value());
  EXPECT_FALSE(quarantined(dir.path(), key));  // stale format, kept in place
  // The next store simply overwrites it with a v2 entry.
  ASSERT_TRUE(cache.store(key, {nonzero_result(), "w", "p", 1}));
  EXPECT_TRUE(cache.load(key).has_value());
}

TEST(LabSerialize, FromFieldsReportsFirstMissingField) {
  auto fields = lab::result_to_fields(nonzero_result());
  std::string missing = "sentinel";
  (void)lab::result_from_fields(fields, &missing);
  EXPECT_TRUE(missing.empty());  // complete map clears it
  fields.erase("cycles");
  (void)lab::result_from_fields(fields, &missing);
  EXPECT_EQ(missing, "cycles");
}

TEST(LabFingerprint, KeyChangesWithConfigPresetAndProgram) {
  const auto w = lab::spec("Pointer", workloads::Scale::Test).build();
  const auto comp = compiler::compile(w.program);

  const machine::MachineConfig base_cfg;
  const auto key =
      lab::content_key(comp.original, machine::Preset::Superscalar, base_cfg);
  EXPECT_EQ(key.size(), 32u);

  // Same inputs -> same key.
  EXPECT_EQ(key, lab::content_key(comp.original,
                                  machine::Preset::Superscalar, base_cfg));
  // Any config change -> new key.
  machine::MachineConfig slow = base_cfg;
  slow.mem.dram_latency = 400;
  EXPECT_NE(key, lab::content_key(comp.original,
                                  machine::Preset::Superscalar, slow));
  machine::MachineConfig narrow = base_cfg;
  narrow.fetch_width = 4;
  EXPECT_NE(key, lab::content_key(comp.original,
                                  machine::Preset::Superscalar, narrow));
  machine::MachineConfig cmp_tweak = base_cfg;
  cmp_tweak.cmp_fork_lookahead = 512;
  EXPECT_NE(key, lab::content_key(comp.original,
                                  machine::Preset::Superscalar, cmp_tweak));
  // Preset and binary changes -> new key.
  EXPECT_NE(key, lab::content_key(comp.original, machine::Preset::CPCMP,
                                  base_cfg));
  EXPECT_NE(key, lab::content_key(comp.separated,
                                  machine::Preset::Superscalar, base_cfg));
}

TEST(LabFingerprint, PrefetcherConfigKeysOnlyWhenEnabled) {
  const auto w = lab::spec("Pointer", workloads::Scale::Test).build();
  const auto comp = compiler::compile(w.program);
  const machine::MachineConfig base;
  const auto key =
      lab::content_key(comp.original, machine::Preset::Superscalar, base);

  // Enabling a prefetcher re-keys; every live knob perturbs further.
  machine::MachineConfig pf = base;
  pf.mem.prefetch = mem::parse_prefetch_spec("ipstride");
  const auto pf_key =
      lab::content_key(comp.original, machine::Preset::Superscalar, pf);
  EXPECT_NE(key, pf_key);
  machine::MachineConfig deg = pf;
  deg.mem.prefetch.degree = 4;
  EXPECT_NE(pf_key, lab::content_key(comp.original,
                                     machine::Preset::Superscalar, deg));
  machine::MachineConfig kind = pf;
  kind.mem.prefetch.kind = mem::PrefetchKind::Sms;
  EXPECT_NE(pf_key, lab::content_key(comp.original,
                                     machine::Preset::Superscalar, kind));

  // A knob of a *disabled* prefetcher cannot change the simulation, so it
  // must not change the key either (and pre-prefetcher cache entries stay
  // reachable: the disabled config keys exactly as before).
  machine::MachineConfig inert = base;
  inert.mem.prefetch.degree = 7;
  inert.mem.prefetch.table_entries = 64;
  EXPECT_EQ(key, lab::content_key(comp.original,
                                  machine::Preset::Superscalar, inert));
}

TEST(LabRunner, ParallelMatchesSerialCellForCell) {
  const auto plan = tiny_plan();
  lab::RunOptions serial;
  serial.threads = 1;
  lab::RunOptions parallel;
  parallel.threads = 4;
  const auto a = lab::run_plan(plan, serial);
  const auto b = lab::run_plan(plan, parallel);
  ASSERT_EQ(a.cells.size(), plan.cells.size());
  ASSERT_EQ(b.cells.size(), plan.cells.size());
  EXPECT_EQ(a.simulated, plan.cells.size());
  for (std::size_t i = 0; i < plan.cells.size(); ++i) {
    EXPECT_TRUE(lab::results_identical(a.cells[i].result, b.cells[i].result))
        << "cell " << i << " (" << plan.cells[i].workload.name << "/"
        << machine::preset_name(plan.cells[i].preset) << ")";
    EXPECT_EQ(a.cells[i].key, b.cells[i].key);
    EXPECT_EQ(a.cells[i].orig_dynamic_instructions,
              b.cells[i].orig_dynamic_instructions);
  }
}

TEST(LabRunner, WarmCacheSimulatesNothingAndMatches) {
  TempDir dir("warm_cache");
  const auto plan = tiny_plan();
  lab::RunOptions opt;
  opt.threads = 2;
  opt.cache_dir = dir.path();

  const auto cold = lab::run_plan(plan, opt);
  EXPECT_EQ(cold.simulated, plan.cells.size());
  EXPECT_EQ(cold.cache_hits, 0u);
  EXPECT_GT(cold.traces, 0u);

  const auto warm = lab::run_plan(plan, opt);
  EXPECT_EQ(warm.simulated, 0u);
  EXPECT_EQ(warm.cache_hits, plan.cells.size());
  EXPECT_EQ(warm.traces, 0u);  // no functional tracing on a warm cache
  for (std::size_t i = 0; i < plan.cells.size(); ++i) {
    EXPECT_TRUE(warm.cells[i].from_cache);
    EXPECT_TRUE(
        lab::results_identical(cold.cells[i].result, warm.cells[i].result));
    EXPECT_EQ(cold.cells[i].orig_dynamic_instructions,
              warm.cells[i].orig_dynamic_instructions);
  }

  // --refresh ignores the warm entries and re-simulates.
  lab::RunOptions refresh = opt;
  refresh.refresh = true;
  const auto forced = lab::run_plan(plan, refresh);
  EXPECT_EQ(forced.simulated, plan.cells.size());
  for (std::size_t i = 0; i < plan.cells.size(); ++i)
    EXPECT_TRUE(
        lab::results_identical(cold.cells[i].result, forced.cells[i].result));
}

// Determinism regression: the same (workload, preset) simulated twice in
// one process yields identical cycles/IPC/cache statistics.
TEST(LabRunner, RepeatedSimulationIsDeterministic) {
  const auto w = lab::spec("Update", workloads::Scale::Test).build();
  const auto comp = compiler::compile(w.program);
  for (const auto preset : lab::all_presets()) {
    const bool sep = machine::uses_separated_binary(preset);
    sim::Functional f(sep ? comp.separated : comp.original);
    const sim::Trace trace = f.run_trace();
    const auto r1 = machine::run_machine(
        sep ? comp.separated : comp.original, trace, preset);
    const auto r2 = machine::run_machine(
        sep ? comp.separated : comp.original, trace, preset);
    EXPECT_EQ(r1.cycles, r2.cycles) << machine::preset_name(preset);
    EXPECT_EQ(r1.ipc, r2.ipc) << machine::preset_name(preset);
    EXPECT_TRUE(lab::results_identical(r1, r2))
        << machine::preset_name(preset);
  }
}

TEST(LabExport, JsonAndCsvCoverEveryCell) {
  const auto plan = tiny_plan();
  lab::RunOptions opt;
  opt.threads = 2;
  const auto run = lab::run_plan(plan, opt);

  const std::string json = lab::to_json(plan, run, lab::ExportMeta{2});
  EXPECT_NE(json.find("\"plan\": \"tiny\""), std::string::npos);
  EXPECT_NE(json.find("\"workload\": \"Pointer\""), std::string::npos);
  EXPECT_NE(json.find("\"preset\": \"HiDISC\""), std::string::npos);
  EXPECT_NE(json.find("\"tag\": \"16/160\""), std::string::npos);
  EXPECT_NE(json.find("\"cycles\":"), std::string::npos);
  EXPECT_NE(json.find("\"l1.read_misses\":"), std::string::npos);

  const std::string csv = lab::to_csv(plan, run);
  // Header + one row per cell.
  std::size_t lines = 0;
  for (const char c : csv) lines += c == '\n';
  EXPECT_EQ(lines, plan.cells.size() + 1);
}

// ---- fault isolation -------------------------------------------------------

TEST(LabRunner, FailingCellIsIsolatedAndHealthyCellsExport) {
  // One cell is sabotaged with an absurd watchdog under Lockstep: its
  // simulation deadlocks deterministically.  Every other cell must
  // complete, the run must count exactly one failure, and both exports
  // must carry the healthy numbers plus the failed cell's diagnostics.
  auto plan = tiny_plan();
  machine::MachineConfig wedged;
  wedged.watchdog_cycles = 1;
  wedged.scheduler = machine::SchedulerKind::Lockstep;
  plan.cells.push_back(lab::Cell{lab::spec("Pointer", workloads::Scale::Test),
                                 machine::Preset::Superscalar, wedged, {},
                                 "wedged"});

  lab::RunOptions opt;
  opt.threads = 2;
  const auto run = lab::run_plan(plan, opt);

  EXPECT_FALSE(run.ok());
  EXPECT_EQ(run.failed, 1u);
  ASSERT_EQ(run.cells.size(), plan.cells.size());
  const auto& bad = run.cells.back();
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.error_class.rfind("deadlock:", 0), 0u) << bad.error_class;
  EXPECT_NE(bad.diagnostic_json.find("\"kind\": \"deadlock\""),
            std::string::npos);
  for (std::size_t i = 0; i + 1 < run.cells.size(); ++i) {
    EXPECT_TRUE(run.cells[i].ok()) << plan.cells[i].workload.name;
    EXPECT_GT(run.cells[i].result.cycles, 0u);
  }

  const std::string json = lab::to_json(plan, run, lab::ExportMeta{2});
  EXPECT_NE(json.find("\"failed\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"ok\": false"), std::string::npos);
  EXPECT_NE(json.find("\"error_class\": \"" + bad.error_class + "\""),
            std::string::npos);
  EXPECT_NE(json.find("\"diagnostic\": {"), std::string::npos);

  const std::string csv = lab::to_csv(plan, run);
  std::size_t lines = 0;
  for (const char c : csv) lines += c == '\n';
  EXPECT_EQ(lines, plan.cells.size() + 1);  // failed cells still get a row
  EXPECT_NE(csv.find("," + bad.error_class + ","), std::string::npos);
  EXPECT_NE(csv.find("\"machine deadlock:"), std::string::npos);
}

TEST(LabRunner, FailedPrepPoisonsOnlyItsOwnCells) {
  // An unbuildable workload spec fails in wave 1; cells that share the
  // plan but not the prep still run.
  auto plan = tiny_plan();
  lab::Cell broken;
  broken.workload.name = "Broken";
  broken.workload.make = [](workloads::Scale,
                            std::uint64_t) -> workloads::BuiltWorkload {
    throw std::runtime_error("synthetic build failure");
  };
  broken.preset = machine::Preset::Superscalar;
  plan.cells.push_back(broken);

  const auto run = lab::run_plan(plan, lab::RunOptions{});
  EXPECT_EQ(run.failed, 1u);
  const auto& bad = run.cells.back();
  EXPECT_EQ(bad.error_class, "prep");
  EXPECT_NE(bad.error.find("synthetic build failure"), std::string::npos);
  EXPECT_TRUE(bad.diagnostic_json.empty());
  for (std::size_t i = 0; i + 1 < run.cells.size(); ++i)
    EXPECT_TRUE(run.cells[i].ok());
}

TEST(LabRunner, FailedCellsNeverEnterTheCache) {
  TempDir dir("cache_no_poison");
  auto plan = tiny_plan();
  plan.cells.clear();
  machine::MachineConfig wedged;
  wedged.watchdog_cycles = 1;
  wedged.scheduler = machine::SchedulerKind::Lockstep;
  plan.cells.push_back(lab::Cell{lab::spec("Pointer", workloads::Scale::Test),
                                 machine::Preset::Superscalar, wedged, {},
                                 "wedged"});

  lab::RunOptions opt;
  opt.cache_dir = dir.path();
  const auto first = lab::run_plan(plan, opt);
  EXPECT_EQ(first.failed, 1u);
  // No entry was stored, so the rerun re-simulates (and re-fails) instead
  // of serving a poisoned hit.
  const auto second = lab::run_plan(plan, opt);
  EXPECT_EQ(second.failed, 1u);
  EXPECT_EQ(second.cache_hits, 0u);
}

}  // namespace
