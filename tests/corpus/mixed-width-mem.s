# hifuzz-repro: v1
# name: mixed-width-mem
# expect: ok
# note: byte/half/word stores and sign-extending reloads interleaved with
# note: doubleword traffic

.data
buf: .space 4096
.text
_start:
  la   r4, buf
  li   r8, -1000
  li   r5, 16
loop:
  sb   r8, 100(r4)
  lb   r9, 100(r4)
  sh   r8, 200(r4)
  lh   r10, 200(r4)
  sw   r8, 300(r4)
  lw   r11, 300(r4)
  add  r8, r8, r9
  add  r8, r8, r10
  add  r8, r8, r11
  addi r5, r5, -1
  bne  r5, r0, loop
  sd   r8, 0(r4)
  sd   r9, 8(r4)
  sd   r10, 16(r4)
  sd   r11, 24(r4)
  halt
