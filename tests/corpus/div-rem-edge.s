# hifuzz-repro: v1
# name: div-rem-edge
# expect: ok
# note: INT64_MIN / -1 and INT64_MIN % -1 -- the one signed-division case
# note: C++ leaves undefined; the functional simulator pins it to
# note: (INT64_MIN, 0) like RISC-V

.data
buf: .space 4096
.text
_start:
  la   r4, buf
  li   r8, 1
  slli r8, r8, 63
  li   r9, -1
  div  r10, r8, r9
  rem  r11, r8, r9
  li   r5, 8
  li   r12, 1000
loop:
  div  r13, r12, r9
  rem  r14, r10, r12
  sub  r12, r12, r13
  addi r5, r5, -1
  bne  r5, r0, loop
  sd   r10, 0(r4)
  sd   r11, 8(r4)
  sd   r12, 16(r4)
  sd   r13, 24(r4)
  sd   r14, 32(r4)
  halt
