# hifuzz-repro: v1
# name: deadlock-scq-overflow
# seed: 0
# expect: gap:verify-ok-deadlock:CP+AP:queue-full-cycle
# streams: A C A A A
# note: minimized verify-ok deadlock: the separation verifier's occupancy
# note: walk models LDQ/SDQ but not the 16-entry SCQ, so 100 putscq with
# note: no consumer verifies clean yet wedges the CP behind a full SCQ
# note: once its window+input queue (16+64) saturate the in-order front
# note: end.  Kept as the regression anchor for the classified
# note: queue-full-cycle DeadlockReport path.
.text
_start:
  li   r5, 100
fill:
  putscq
  addi r5, r5, -1
  bne  r5, r0, fill
  halt
