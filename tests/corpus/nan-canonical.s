# hifuzz-repro: v1
# name: nan-canonical
# expect: ok
# note: every NaN-producing FP arithmetic shape, with both NaN operand
# note: orders -- x86 propagates the first machine operand's payload, so
# note: without canon_nan the trace bytes of fadd f, +qNaN, -qNaN depend
# note: on register allocation and the two interpreters diverge
# note: (campaign seed 4571229358325483140, sig fsim-div:original)

.data
buf: .space 64
k:   .double 0.0, 1.0, -1.0
.text
_start:
  la   r4, buf
  la   r6, k
  fld  f1, 0(r6)      # 0.0
  fld  f2, 8(r6)      # 1.0
  fld  f3, 16(r6)     # -1.0
  fdiv f4, f1, f1     # 0/0 -> NaN
  fneg f5, f4         # opposite-sign NaN (bit op, payload preserved)
  fadd f6, f4, f5     # NaN+NaN, both operand orders
  fadd f7, f5, f4
  fmin f8, f4, f5
  fmax f9, f5, f4
  fsqrt f10, f3       # sqrt(-1) -> NaN
  fdiv f11, f2, f1    # 1/0 -> +inf
  fsub f12, f11, f11  # inf-inf -> NaN
  fmul f13, f1, f11   # 0*inf -> NaN
  fsd  f6, 0(r4)
  fsd  f7, 8(r4)
  fsd  f8, 16(r4)
  fsd  f9, 24(r4)
  fsd  f10, 32(r4)
  fsd  f12, 40(r4)
  fsd  f13, 48(r4)
  halt
