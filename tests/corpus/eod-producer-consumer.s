# hifuzz-repro: v1
# name: eod-producer-consumer
# expect: ok
# streams: AAAAAAAACCCCCAAAA
# note: hand-decoupled Figure-3 protocol -- AP pushes a batch and signals
# note: EOD, CP drains via BEOD; replayed through the decoupled oracle
# note: (streams tag per instruction, push/pop counts legitimately
# note: asymmetric because BEOD probes without consuming)

.data
vals: .space 800
out:  .space 8
.text
_start:
  la   r4, vals
  li   r5, 20
loop:
  ld   r6, 0(r4)
  pushldq r6
  addi r4, r4, 8
  addi r5, r5, -1
  bne  r5, r0, loop
  puteod
cp_entry:
  popldq r8
  add  r9, r9, r8
  beod done
  j    cp_entry
done:
  pushsdq r9
  popsdq r10
  la   r11, out
  sd   r10, 0(r11)
  halt
