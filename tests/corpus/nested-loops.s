# hifuzz-repro: v1
# name: nested-loops
# expect: ok
# note: two-level loop nest with stores indexed by the inner counter

.data
buf: .space 4096
.text
_start:
  la   r4, buf
  li   r9, 0
  li   r5, 12
outer:
  li   r7, 9
inner:
  mul  r8, r5, r7
  add  r9, r9, r8
  slli r20, r7, 3
  andi r20, r20, 4088
  add  r20, r4, r20
  sd   r9, 0(r20)
  addi r7, r7, -1
  bne  r7, r0, inner
  addi r5, r5, -1
  bne  r5, r0, outer
  sd   r9, 0(r4)
  halt
