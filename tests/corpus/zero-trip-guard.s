# hifuzz-repro: v1
# name: zero-trip-guard
# expect: ok
# note: a guarded loop whose body never executes -- the separator must
# note: not emit queue traffic for a statically present, dynamically dead
# note: load

.data
buf: .space 4096
.text
_start:
  la   r4, buf
  li   r5, 0
  beq  r5, r0, skip
loop:
  ld   r8, 0(r4)
  add  r9, r9, r8
  addi r5, r5, -1
  bne  r5, r0, loop
skip:
  li   r6, 5
loop2:
  addi r9, r9, 2
  addi r6, r6, -1
  bne  r6, r0, loop2
  sd   r9, 0(r4)
  halt
