# hifuzz-repro: v1
# name: cross-stream-flow
# expect: ok
# note: cvtif/cvtfi round trips and an FP compare feeding an integer
# note: branch -- every value crossing forces an LDQ/SDQ communication

.data
buf:   .space 4096
seeds: .double 1.5, -2.25, 0.75, 3.0
.text
_start:
  la   r4, buf
  la   r6, seeds
  fld  f1, 0(r6)
  fld  f2, 8(r6)
  li   r5, 32
  li   r8, 7
loop:
  cvtif f3, r8
  fadd f4, f3, f1
  cvtfi r9, f4
  add  r8, r8, r9
  flt  r10, f2, f4
  beq  r10, r0, skip
  addi r8, r8, 3
skip:
  addi r5, r5, -1
  bne  r5, r0, loop
  sd   r8, 0(r4)
  sd   r9, 8(r4)
  fsd  f4, 16(r4)
  halt
