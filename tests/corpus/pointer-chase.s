# hifuzz-repro: v1
# name: pointer-chase
# expect: ok
# note: dependent-load chain through offsets scattered into buf; the
# note: AP-critical access pattern from the paper's pointer-chase kernels

.data
buf: .space 4096
.text
_start:
  la   r4, buf
  li   r7, 63
init:
  slli r20, r7, 3
  add  r20, r4, r20
  mul  r21, r7, r7
  addi r21, r21, 5
  slli r21, r21, 3
  andi r21, r21, 4088
  sd   r21, 0(r20)
  addi r7, r7, -1
  bne  r7, r0, init
  li   r5, 40
  li   r8, 8
  li   r9, 0
loop:
  andi r20, r8, 4088
  add  r20, r4, r20
  ld   r8, 0(r20)
  add  r9, r9, r8
  addi r5, r5, -1
  bne  r5, r0, loop
  sd   r8, 0(r4)
  sd   r9, 8(r4)
  halt
