# hifuzz-repro: v1
# name: cvtfi-saturate
# expect: ok
# note: regression for the CVTFI out-of-range/NaN fix found by fuzzing --
# note: converting 1e300, -1e300 and sqrt(-2.25) must saturate to
# note: INT64_MAX / INT64_MIN / 0 instead of invoking undefined behaviour

.data
buf:  .space 4096
huge: .double 1e300, -1e300, -2.25
.text
_start:
  la    r4, buf
  la    r6, huge
  fld   f1, 0(r6)
  fld   f2, 8(r6)
  fld   f3, 16(r6)
  fsqrt f4, f3
  cvtfi r8, f1
  cvtfi r9, f2
  cvtfi r10, f4
  li    r5, 4
loop:
  cvtfi r11, f1
  add   r12, r12, r11
  addi  r5, r5, -1
  bne   r5, r0, loop
  sd    r8, 0(r4)
  sd    r9, 8(r4)
  sd    r10, 16(r4)
  sd    r12, 24(r4)
  halt
