# Deliberately deadlocking CI kernel.
#
# Strided loads at 64-byte intervals miss the L1 (32B lines) and L2 (64B
# lines) on every iteration, so each `ld` is a full DRAM round trip with a
# dependent consumer behind it: the scheduling window fills and the machine
# makes zero progress for >64 consecutive cycles at a time.  Run under
#
#   hisa sim tests/testdata/deadlock-batch.s --machine ss \
#        --lockstep --watchdog 1 --deadlock-json report.json
#
# the watchdog trips deterministically, hisa exits 3, and the classified
# DeadlockReport lands in report.json (see docs/MACHINE.md).  With a sane
# watchdog the kernel completes normally — the hang is induced by the
# deliberately absurd threshold, which is exactly what the forensics CI job
# wants to exercise.
.data
buf: .space 8192
out: .space 8
.text
_start:
  la   r4, buf
  li   r5, 120
loop:
  ld   r6, 0(r4)
  add  r7, r7, r6
  addi r4, r4, 64
  addi r5, r5, -1
  bne  r5, r0, loop
  la   r8, out
  sd   r7, 0(r8)
  halt
