// Unit tests for the small µarch building blocks: timed FIFOs (LDQ/SDQ/SCQ
// semantics) and functional-unit pools.
#include <gtest/gtest.h>

#include "uarch/fu_pool.hpp"
#include "uarch/timed_fifo.hpp"

namespace hidisc::uarch {
namespace {

TEST(TimedFifo, PushPopFifoOrder) {
  TimedFifo q("q", 4);
  EXPECT_TRUE(q.push({10, 1, false}));
  EXPECT_TRUE(q.push({20, 2, false}));
  ASSERT_NE(q.front_ready(100), nullptr);
  EXPECT_EQ(q.front_ready(100)->producer_pos, 1);
  EXPECT_EQ(q.pop().producer_pos, 1);
  EXPECT_EQ(q.pop().producer_pos, 2);
  EXPECT_TRUE(q.empty());
}

TEST(TimedFifo, CapacityRejectsWhenFull) {
  TimedFifo q("q", 2);
  EXPECT_TRUE(q.push({0, 0, false}));
  EXPECT_TRUE(q.push({0, 1, false}));
  EXPECT_TRUE(q.full());
  EXPECT_FALSE(q.push({0, 2, false}));
  EXPECT_EQ(q.stats().pushes, 2u);
}

TEST(TimedFifo, FrontNotReadyBeforeItsCycle) {
  TimedFifo q("q", 4);
  q.push({50, 0, false});
  EXPECT_EQ(q.front_ready(49), nullptr);
  EXPECT_NE(q.front_ready(50), nullptr);
}

TEST(TimedFifo, ReadyIsHeadOnly) {
  // A ready entry behind an unready head stays invisible: FIFO semantics.
  TimedFifo q("q", 4);
  q.push({100, 0, false});
  q.push({0, 1, false});
  EXPECT_EQ(q.front_ready(10), nullptr);
}

TEST(TimedFifo, EodFlagTravels) {
  TimedFifo q("q", 4);
  q.push({0, -1, true});
  ASSERT_NE(q.front_ready(0), nullptr);
  EXPECT_TRUE(q.front_ready(0)->eod);
}

TEST(TimedFifo, StatsTrackOccupancyAndStalls) {
  TimedFifo q("q", 3);
  q.push({0, 0, false});
  q.push({0, 1, false});
  q.note_full_stall();
  q.note_empty_stall();
  EXPECT_EQ(q.stats().max_occupancy, 2u);
  EXPECT_EQ(q.stats().full_stall_cycles, 1u);
  EXPECT_EQ(q.stats().empty_stall_cycles, 1u);
  q.reset();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.stats().pushes, 0u);
}

TEST(FuPool, AcquireUntilExhausted) {
  FuPool pool(2);
  EXPECT_TRUE(pool.available(0));
  EXPECT_TRUE(pool.acquire(0, 1));
  EXPECT_TRUE(pool.acquire(0, 1));
  EXPECT_FALSE(pool.acquire(0, 1));  // both busy this cycle
  EXPECT_TRUE(pool.acquire(1, 1));   // pipelined: free next cycle
}

TEST(FuPool, UnpipelinedOccupiesForLatency) {
  FuPool pool(1);
  EXPECT_TRUE(pool.acquire(0, 20));  // divide occupies 20 cycles
  EXPECT_FALSE(pool.available(19));
  EXPECT_TRUE(pool.available(20));
}

TEST(FuPool, ResetFreesUnits) {
  FuPool pool(1);
  pool.acquire(0, 100);
  pool.reset();
  EXPECT_TRUE(pool.available(0));
}

TEST(FuPool, SizeReportsUnitCount) {
  EXPECT_EQ(FuPool(4).size(), 4);
  EXPECT_EQ(FuPool().size(), 0);
}

}  // namespace
}  // namespace hidisc::uarch
