// Unit tests for the small µarch building blocks: timed FIFOs (LDQ/SDQ/SCQ
// semantics) and functional-unit pools.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <stdexcept>
#include <vector>

#include "uarch/fu_pool.hpp"
#include "uarch/timed_fifo.hpp"

namespace hidisc::uarch {
namespace {

TEST(TimedFifo, PushPopFifoOrder) {
  TimedFifo q("q", 4);
  EXPECT_TRUE(q.push({10, 1, false}));
  EXPECT_TRUE(q.push({20, 2, false}));
  ASSERT_NE(q.front_ready(100), nullptr);
  EXPECT_EQ(q.front_ready(100)->producer_pos, 1);
  EXPECT_EQ(q.pop().producer_pos, 1);
  EXPECT_EQ(q.pop().producer_pos, 2);
  EXPECT_TRUE(q.empty());
}

TEST(TimedFifo, CapacityRejectsWhenFull) {
  TimedFifo q("q", 2);
  EXPECT_TRUE(q.push({0, 0, false}));
  EXPECT_TRUE(q.push({0, 1, false}));
  EXPECT_TRUE(q.full());
  EXPECT_FALSE(q.push({0, 2, false}));
  EXPECT_EQ(q.stats().pushes, 2u);
}

TEST(TimedFifo, FrontNotReadyBeforeItsCycle) {
  TimedFifo q("q", 4);
  q.push({50, 0, false});
  EXPECT_EQ(q.front_ready(49), nullptr);
  EXPECT_NE(q.front_ready(50), nullptr);
}

TEST(TimedFifo, ReadyIsHeadOnly) {
  // A ready entry behind an unready head stays invisible: FIFO semantics.
  TimedFifo q("q", 4);
  q.push({100, 0, false});
  q.push({0, 1, false});
  EXPECT_EQ(q.front_ready(10), nullptr);
}

TEST(TimedFifo, EodFlagTravels) {
  TimedFifo q("q", 4);
  q.push({0, -1, true});
  ASSERT_NE(q.front_ready(0), nullptr);
  EXPECT_TRUE(q.front_ready(0)->eod);
}

TEST(TimedFifo, StatsTrackOccupancyAndStalls) {
  TimedFifo q("q", 3);
  q.push({0, 0, false});
  q.push({0, 1, false});
  q.note_full_stall();
  q.note_empty_stall();
  EXPECT_EQ(q.stats().max_occupancy, 2u);
  EXPECT_EQ(q.stats().full_stall_cycles, 1u);
  EXPECT_EQ(q.stats().empty_stall_cycles, 1u);
  q.reset();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.stats().pushes, 0u);
}

TEST(TimedFifo, PopOnEmptyThrows) {
  // A pop with no token is always a scheduler bug (the issue gates check
  // front_ready first); it must fail loudly, not return garbage.
  TimedFifo q("ldq", 2);
  EXPECT_THROW(q.pop(), std::logic_error);
  q.push({0, 7, false});
  EXPECT_EQ(q.pop().producer_pos, 7);
  EXPECT_THROW(q.pop(), std::logic_error);
}

TEST(FuPool, AcquireUntilExhausted) {
  FuPool pool(2);
  EXPECT_TRUE(pool.available(0));
  EXPECT_TRUE(pool.acquire(0, 1));
  EXPECT_TRUE(pool.acquire(0, 1));
  EXPECT_FALSE(pool.acquire(0, 1));  // both busy this cycle
  EXPECT_TRUE(pool.acquire(1, 1));   // pipelined: free next cycle
}

TEST(FuPool, UnpipelinedOccupiesForLatency) {
  FuPool pool(1);
  EXPECT_TRUE(pool.acquire(0, 20));  // divide occupies 20 cycles
  EXPECT_FALSE(pool.available(19));
  EXPECT_TRUE(pool.available(20));
}

TEST(FuPool, ResetFreesUnits) {
  FuPool pool(1);
  pool.acquire(0, 100);
  pool.reset();
  EXPECT_TRUE(pool.available(0));
}

TEST(FuPool, SizeReportsUnitCount) {
  EXPECT_EQ(FuPool(4).size(), 4);
  EXPECT_EQ(FuPool().size(), 0);
}

// The pool keeps a lazily-pruned min-heap of release times; this model is
// the obvious per-unit array with linear scans.  Every query the issue
// path makes (available / acquire / next_release / exhausted_at) must
// agree with it under a random schedule of pipelined and unpipelined
// acquires with time always moving forward.
struct RefPool {
  explicit RefPool(int units) : release(static_cast<std::size_t>(units), 0) {}
  std::vector<std::uint64_t> release;  // per-unit: busy until this cycle

  bool available(std::uint64_t now) const {
    return std::any_of(release.begin(), release.end(),
                       [&](std::uint64_t r) { return r <= now; });
  }
  bool acquire(std::uint64_t now, int busy) {
    for (auto& r : release)
      if (r <= now) {
        r = now + static_cast<std::uint64_t>(busy);
        return true;
      }
    return false;
  }
  std::uint64_t next_release(std::uint64_t now) const {
    std::uint64_t best = kNoEvent;
    for (const auto r : release)
      if (r > now) best = std::min(best, r);
    return best;
  }
  bool exhausted_at(std::uint64_t t) const {
    return std::all_of(release.begin(), release.end(),
                       [&](std::uint64_t r) { return r > t; });
  }
};

TEST(FuPool, AgreesWithLinearScanModelUnderRandomSchedule) {
  for (const int units : {1, 2, 4}) {
    FuPool pool(units);
    RefPool ref(units);
    std::mt19937_64 rng(0xF00Du + static_cast<std::uint64_t>(units));
    std::uint64_t now = 0;
    for (int step = 0; step < 2000; ++step) {
      now += rng() % 3;  // time never moves backwards, often stays put
      switch (rng() % 3) {
        case 0: {  // pipelined op: busy one cycle
          EXPECT_EQ(pool.acquire(now, 1), ref.acquire(now, 1))
              << units << " units, step " << step;
          break;
        }
        case 1: {  // unpipelined divide: busy up to 20 cycles
          const int busy = 1 + static_cast<int>(rng() % 20);
          EXPECT_EQ(pool.acquire(now, busy), ref.acquire(now, busy))
              << units << " units, step " << step;
          break;
        }
        default:
          break;  // query-only step
      }
      EXPECT_EQ(pool.available(now), ref.available(now)) << "step " << step;
      EXPECT_EQ(pool.next_release(now), ref.next_release(now))
          << "step " << step;
      // exhausted_at is read-only and must hold at the present and at the
      // future instants the invariant checker probes (pin horizons).
      EXPECT_EQ(pool.exhausted_at(now), ref.exhausted_at(now))
          << "step " << step;
      const std::uint64_t t = now + rng() % 25;
      EXPECT_EQ(pool.exhausted_at(t), ref.exhausted_at(t))
          << "step " << step << " at " << t;
    }
  }
}

}  // namespace
}  // namespace hidisc::uarch
