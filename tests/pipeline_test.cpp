// Artifact-pipeline tests (src/pipeline/): content-addressed node keys —
// each input dimension perturbs exactly the downstream hashes it should —
// the TraceStore's round-trip/corruption contract, and warm/partial
// invalidation through lab::run_plan's per-phase node stats.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>

#include "compiler/compile.hpp"
#include "isa/encoding.hpp"
#include "lab/fingerprint.hpp"
#include "lab/plan.hpp"
#include "lab/runner.hpp"
#include "lab/serialize.hpp"
#include "pipeline/executor.hpp"
#include "pipeline/graph.hpp"
#include "pipeline/keys.hpp"
#include "pipeline/trace_store.hpp"
#include "sim/functional.hpp"

namespace {

using namespace hidisc;
namespace fs = std::filesystem;

class TempDir {
 public:
  explicit TempDir(const char* tag)
      : path_((fs::temp_directory_path() /
               (std::string("hidisc_pipeline_test_") + tag + "_" +
                std::to_string(::getpid())))
                  .string()) {
    fs::remove_all(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

compiler::Compilation compile_spec(const char* name) {
  const auto w = lab::spec(name, workloads::Scale::Test).build();
  return compiler::compile(w.program);
}

bool traces_equal(const sim::Trace& a, const sim::Trace& b) {
  if (a.size() != b.size()) return false;
  return a.empty() ||
         std::memcmp(a.data(), b.data(), a.size() * sizeof(a[0])) == 0;
}

// ---- key sensitivity -------------------------------------------------------

TEST(PipelineKeys, CompileKeyTracksWorkloadIdentityAndOptions) {
  const compiler::CompileOptions opt;
  const auto pointer = lab::spec("Pointer", workloads::Scale::Test);
  const auto update = lab::spec("Update", workloads::Scale::Test);

  const std::string k = pipeline::compile_key(pointer, opt);
  EXPECT_EQ(k.size(), 32u);
  // Stable for the same inputs; different kernel or scale -> different key.
  EXPECT_EQ(k, pipeline::compile_key(pointer, opt));
  EXPECT_NE(k, pipeline::compile_key(update, opt));
  EXPECT_NE(k, pipeline::compile_key(
                   lab::spec("Pointer", workloads::Scale::Paper), opt));

  compiler::CompileOptions budget = opt;
  budget.max_steps = opt.max_steps / 2;
  EXPECT_NE(k, pipeline::compile_key(pointer, budget));
}

TEST(PipelineKeys, KernelTextPerturbsEveryDownstreamKey) {
  const auto a = compile_spec("Pointer");
  const auto b = compile_spec("Update");
  const auto img_a = isa::save_program(a.original);
  const auto img_b = isa::save_program(b.original);
  ASSERT_NE(img_a, img_b);

  const std::uint64_t steps = compiler::CompileOptions{}.max_steps;
  EXPECT_NE(pipeline::trace_key(img_a, steps),
            pipeline::trace_key(img_b, steps));
  const machine::MachineConfig cfg;
  EXPECT_NE(pipeline::sim_key(img_a, machine::Preset::Superscalar, cfg),
            pipeline::sim_key(img_b, machine::Preset::Superscalar, cfg));
}

TEST(PipelineKeys, SeparatorModeSelectsADistinctBinary) {
  const auto comp = compile_spec("Pointer");
  const auto orig = isa::save_program(comp.original);
  const auto sep = isa::save_program(comp.separated);
  ASSERT_NE(orig, sep);

  const std::uint64_t steps = compiler::CompileOptions{}.max_steps;
  // Original and separated binaries never share trace or sim nodes.
  EXPECT_NE(pipeline::trace_key(orig, steps),
            pipeline::trace_key(sep, steps));
  const machine::MachineConfig cfg;
  EXPECT_NE(pipeline::sim_key(orig, machine::Preset::HiDISC, cfg),
            pipeline::sim_key(sep, machine::Preset::HiDISC, cfg));
}

TEST(PipelineKeys, MachinePresetAndConfigPerturbOnlySimKeys) {
  const auto comp = compile_spec("Pointer");
  const auto img = isa::save_program(comp.original);
  const std::uint64_t steps = compiler::CompileOptions{}.max_steps;
  const std::string tk = pipeline::trace_key(img, steps);

  const machine::MachineConfig base;
  const std::string sk =
      pipeline::sim_key(img, machine::Preset::Superscalar, base);

  // Preset changes the sim key; the trace key is preset-blind.
  EXPECT_NE(sk, pipeline::sim_key(img, machine::Preset::CPCMP, base));
  EXPECT_EQ(tk, pipeline::trace_key(img, steps));

  // Any config field change (dram latency, watchdog) re-keys the sim
  // node only — this is the warm-trace invalidation contract.
  machine::MachineConfig slow = base;
  slow.mem.dram_latency = 200;
  EXPECT_NE(sk, pipeline::sim_key(img, machine::Preset::Superscalar, slow));
  machine::MachineConfig dog = base;
  dog.watchdog_cycles = 42;
  EXPECT_NE(sk, pipeline::sim_key(img, machine::Preset::Superscalar, dog));
  EXPECT_EQ(tk, pipeline::trace_key(img, steps));
}

TEST(PipelineKeys, PrefetcherConfigPerturbsOnlySimKeys) {
  const auto comp = compile_spec("Pointer");
  const auto img = isa::save_program(comp.original);
  const std::uint64_t steps = compiler::CompileOptions{}.max_steps;
  const std::string tk = pipeline::trace_key(img, steps);
  const machine::MachineConfig base;
  const std::string sk =
      pipeline::sim_key(img, machine::Preset::Superscalar, base);

  // Enabling a prefetcher, or turning any of its live knobs, re-keys the
  // sim node and nothing upstream (hilab --override '*:prefetch=...'
  // rides this: zero trace rebuilds).
  machine::MachineConfig pf = base;
  pf.mem.prefetch = mem::parse_prefetch_spec("ipstride:deg4");
  const std::string pf_sk =
      pipeline::sim_key(img, machine::Preset::Superscalar, pf);
  EXPECT_NE(sk, pf_sk);
  machine::MachineConfig dist = pf;
  dist.mem.prefetch.distance = 2;
  EXPECT_NE(pf_sk, pipeline::sim_key(img, machine::Preset::Superscalar, dist));
  EXPECT_EQ(tk, pipeline::trace_key(img, steps));
  const compiler::CompileOptions opt;
  EXPECT_EQ(pipeline::compile_key(lab::spec("Pointer", workloads::Scale::Test),
                                  opt),
            pipeline::compile_key(lab::spec("Pointer", workloads::Scale::Test),
                                  opt));

  // Knobs of a disabled prefetcher are inert: same sim key, same cache
  // entries.
  machine::MachineConfig idle = base;
  idle.mem.prefetch.degree = 9;
  EXPECT_EQ(sk, pipeline::sim_key(img, machine::Preset::Superscalar, idle));
}

TEST(PipelineKeys, SchedulerKindIsExcludedEverywhere) {
  // Event-skip and lockstep are bit-identical (the HIDISC_LOCKSTEP
  // oracle), so the scheduler must not perturb any node key.
  const auto comp = compile_spec("Pointer");
  const auto img = isa::save_program(comp.original);
  machine::MachineConfig ev, lk;
  ev.scheduler = machine::SchedulerKind::EventSkip;
  lk.scheduler = machine::SchedulerKind::Lockstep;
  EXPECT_EQ(pipeline::sim_key(img, machine::Preset::Superscalar, ev),
            pipeline::sim_key(img, machine::Preset::Superscalar, lk));
}

TEST(PipelineKeys, SimKeyMatchesPreRefactorContentKey) {
  // sim_key must stay byte-for-byte lab::content_key so result caches
  // written before the DAG refactor remain valid.
  const auto comp = compile_spec("Update");
  const machine::MachineConfig cfg;
  for (const auto preset : lab::all_presets()) {
    const auto& bin = machine::uses_separated_binary(preset)
                          ? comp.separated
                          : comp.original;
    EXPECT_EQ(pipeline::sim_key(isa::save_program(bin), preset, cfg),
              lab::content_key(bin, preset, cfg))
        << machine::preset_name(preset);
  }
}

// ---- graph shape -----------------------------------------------------------

TEST(PipelineGraph, NodesAreSharedAcrossCells) {
  // 2 workloads x 4 presets: 2 compile nodes, 4 trace nodes (orig + sep
  // per workload), 8 sim nodes.
  std::vector<lab::Cell> cells;
  for (const char* name : {"Pointer", "Update"})
    for (const auto preset : lab::all_presets())
      cells.push_back(lab::Cell{lab::spec(name, workloads::Scale::Test),
                                preset, {}, {}, ""});
  const pipeline::Graph g = pipeline::build_graph(cells);
  EXPECT_EQ(g.compiles.size(), 2u);
  EXPECT_EQ(g.traces.size(), 4u);
  ASSERT_EQ(g.sims.size(), cells.size());
  for (std::size_t i = 0; i < g.sims.size(); ++i) {
    EXPECT_EQ(g.sims[i].index, i);
    EXPECT_EQ(g.sims[i].cell, &cells[i]);
  }
}

// ---- trace store -----------------------------------------------------------

TEST(TraceStore, RoundTripsATrace) {
  TempDir dir("roundtrip");
  pipeline::TraceStore store(dir.path());
  const auto comp = compile_spec("Pointer");
  sim::Functional f(comp.original);
  const sim::Trace trace = f.run_trace();
  ASSERT_FALSE(trace.empty());

  const std::string key = "0123456789abcdef0123456789abcdef";
  EXPECT_FALSE(store.load(key).has_value());  // cold
  ASSERT_TRUE(store.store(key, trace));
  const auto back = store.load(key);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(traces_equal(trace, *back));
}

TEST(TraceStore, CorruptedEntryIsQuarantinedNotServed) {
  TempDir dir("bitrot");
  pipeline::TraceStore store(dir.path());
  const auto comp = compile_spec("Pointer");
  const sim::Trace trace = sim::Functional(comp.original).run_trace();
  const std::string key = "feedfacefeedfacefeedfacefeedface";
  ASSERT_TRUE(store.store(key, trace));

  // Flip one byte in the entry payload (past the fixed header).
  const std::string path = dir.path() + "/" + key + ".trace";
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.is_open());
    f.seekp(64);
    char c = 0;
    f.read(&c, 1);
    f.seekp(64);
    c = static_cast<char>(c ^ 0x40);
    f.write(&c, 1);
  }
  EXPECT_FALSE(store.load(key).has_value());
  // The corrupt file was moved aside, so a rerun misses cleanly instead
  // of re-reading the bad bytes.
  EXPECT_FALSE(fs::exists(path));
  bool quarantined = false;
  for (const auto& e : fs::directory_iterator(dir.path()))
    if (e.path().string().find(".corrupt.") != std::string::npos)
      quarantined = true;
  EXPECT_TRUE(quarantined);
}

TEST(TraceStore, ForeignFormatIsAMissNotCorruption) {
  TempDir dir("foreign");
  pipeline::TraceStore store(dir.path());
  const std::string key = "deadbeefdeadbeefdeadbeefdeadbeef";
  const std::string path = dir.path() + "/" + key + ".trace";
  {
    std::ofstream f(path, std::ios::binary);
    f << "not a hilab trace";
  }
  // A wrong magic header means "some other format/version": treat as a
  // miss (re-trace and overwrite), don't quarantine what may be someone
  // else's file.
  EXPECT_FALSE(store.load(key).has_value());
  EXPECT_TRUE(fs::exists(path));
}

// ---- warm / partial invalidation through the runner ------------------------

lab::ExperimentPlan two_workload_plan() {
  lab::ExperimentPlan plan{"pipe", "pipeline_test plan", {}};
  for (const char* name : {"Pointer", "Update"})
    for (const auto preset : lab::all_presets())
      plan.cells.push_back(lab::Cell{lab::spec(name, workloads::Scale::Test),
                                     preset, {}, {}, ""});
  return plan;
}

TEST(PipelineRunner, WarmRunRebuildsNoNodes) {
  TempDir dir("warm_nodes");
  const auto plan = two_workload_plan();
  lab::RunOptions opt;
  opt.threads = 2;
  opt.cache_dir = dir.path();

  const auto cold = lab::run_plan(plan, opt);
  EXPECT_EQ(cold.nodes.compile.total, 2u);
  EXPECT_EQ(cold.nodes.compile.rebuilt, 2u);
  EXPECT_EQ(cold.nodes.trace.total, 4u);
  EXPECT_EQ(cold.nodes.trace.rebuilt, 4u);
  EXPECT_EQ(cold.nodes.sim.total, plan.cells.size());
  EXPECT_EQ(cold.nodes.sim.rebuilt, plan.cells.size());
  // PlanRun's legacy counters are views of the node stats.
  EXPECT_EQ(cold.preps, cold.nodes.compile.rebuilt);
  EXPECT_EQ(cold.traces, cold.nodes.trace.rebuilt);

  const auto warm = lab::run_plan(plan, opt);
  EXPECT_EQ(warm.nodes.sim.hits, plan.cells.size());
  EXPECT_EQ(warm.nodes.sim.rebuilt, 0u);
  // Result-cache hits are probed before traces are demanded, so a fully
  // warm run neither rebuilds nor loads a single trace node.
  EXPECT_EQ(warm.nodes.trace.rebuilt, 0u);
  EXPECT_EQ(warm.nodes.trace.hits, 0u);
  EXPECT_EQ(warm.nodes.trace.skipped(), warm.nodes.trace.total);
}

TEST(PipelineRunner, PresetOnlyChangeKeepsEveryTraceWarm) {
  TempDir dir("preset_invalidate");
  auto plan = two_workload_plan();
  lab::RunOptions opt;
  opt.threads = 2;
  opt.cache_dir = dir.path();
  const auto cold = lab::run_plan(plan, opt);
  ASSERT_EQ(cold.failed, 0u);

  // Mutate the machine config of the HiDISC cells only (the CI job does
  // the same via hilab --override): their sim nodes re-key and rerun,
  // every other cell hits, and ZERO traces are re-traced — the HiDISC
  // cells' separated-binary traces load from the store instead.
  std::size_t mutated = 0;
  for (auto& cell : plan.cells)
    if (cell.preset == machine::Preset::HiDISC) {
      cell.config.mem.dram_latency = 200;
      ++mutated;
    }
  ASSERT_GT(mutated, 0u);

  const auto partial = lab::run_plan(plan, opt);
  EXPECT_EQ(partial.failed, 0u);
  EXPECT_EQ(partial.nodes.sim.rebuilt, mutated);
  EXPECT_EQ(partial.nodes.sim.hits, plan.cells.size() - mutated);
  EXPECT_EQ(partial.nodes.trace.rebuilt, 0u);
  // Exactly the separated-binary trace of each mutated workload was
  // demanded, and all of them came from the trace store.
  EXPECT_EQ(partial.nodes.trace.hits, 2u);
  EXPECT_EQ(partial.nodes.trace.skipped(), partial.nodes.trace.total - 2u);
  for (std::size_t i = 0; i < plan.cells.size(); ++i)
    EXPECT_EQ(partial.cells[i].from_cache,
              plan.cells[i].preset != machine::Preset::HiDISC)
        << i;
}

TEST(PipelineRunner, PrefetcherChangeResimulatesExactlyAffectedCells) {
  TempDir dir("prefetch_invalidate");
  auto plan = two_workload_plan();
  lab::RunOptions opt;
  opt.threads = 2;
  opt.cache_dir = dir.path();
  const auto cold = lab::run_plan(plan, opt);
  ASSERT_EQ(cold.failed, 0u);

  // Enable a hardware prefetcher on the CP+AP cells only (what
  // `hilab --override 'CP+AP:prefetch=ipstride:deg4'` does): exactly
  // those sim nodes re-key and rerun, every other cell hits, and no
  // trace is ever re-traced.
  std::size_t mutated = 0;
  for (auto& cell : plan.cells)
    if (cell.preset == machine::Preset::CPAP) {
      cell.config.mem.prefetch = mem::parse_prefetch_spec("ipstride:deg4");
      ++mutated;
    }
  ASSERT_GT(mutated, 0u);

  const auto partial = lab::run_plan(plan, opt);
  EXPECT_EQ(partial.failed, 0u);
  EXPECT_EQ(partial.nodes.sim.rebuilt, mutated);
  EXPECT_EQ(partial.nodes.sim.hits, plan.cells.size() - mutated);
  EXPECT_EQ(partial.nodes.trace.rebuilt, 0u);
  for (std::size_t i = 0; i < plan.cells.size(); ++i)
    EXPECT_EQ(partial.cells[i].from_cache,
              plan.cells[i].preset != machine::Preset::CPAP)
        << i;
  // And a warm re-run of the mutated plan is all hits.
  const auto warm = lab::run_plan(plan, opt);
  EXPECT_EQ(warm.nodes.sim.hits, plan.cells.size());
  EXPECT_EQ(warm.nodes.sim.rebuilt, 0u);
}

TEST(PipelineRunner, RefreshBypassesBothStoresButStillWritesThem) {
  TempDir dir("refresh_traces");
  const auto plan = two_workload_plan();
  lab::RunOptions opt;
  opt.threads = 2;
  opt.cache_dir = dir.path();
  const auto cold = lab::run_plan(plan, opt);

  lab::RunOptions refresh = opt;
  refresh.refresh = true;
  const auto forced = lab::run_plan(plan, refresh);
  EXPECT_EQ(forced.nodes.sim.rebuilt, plan.cells.size());
  EXPECT_EQ(forced.nodes.trace.rebuilt, forced.nodes.trace.total);
  EXPECT_EQ(forced.nodes.trace.hits, 0u);
  for (std::size_t i = 0; i < plan.cells.size(); ++i)
    EXPECT_TRUE(lab::results_identical(cold.cells[i].result,
                                       forced.cells[i].result));

  // The refreshed entries were re-published: a follow-up warm run hits.
  const auto warm = lab::run_plan(plan, opt);
  EXPECT_EQ(warm.nodes.sim.hits, plan.cells.size());
}

TEST(PipelineRunner, SessionMemoSharesArtifactsAcrossRuns) {
  // One Pipeline object serving two runs (the hiserved worker pattern)
  // compiles and traces once, even with no disk stores at all.
  pipeline::Pipeline pipe;
  std::vector<lab::Cell> cells{
      lab::Cell{lab::spec("Pointer", workloads::Scale::Test),
                machine::Preset::Superscalar, {}, {}, ""}};
  const auto first = pipe.run(cells, nullptr);
  EXPECT_EQ(first.nodes.compile.rebuilt, 1u);
  EXPECT_EQ(first.nodes.trace.rebuilt, 1u);
  const auto second = pipe.run(cells, nullptr);
  EXPECT_EQ(second.nodes.compile.hits, 1u);
  EXPECT_EQ(second.nodes.trace.hits, 1u);
  EXPECT_EQ(second.nodes.trace.rebuilt, 0u);
  EXPECT_TRUE(lab::results_identical(first.cells[0].result,
                                     second.cells[0].result));
}

}  // namespace
