// Stream-separation tests, including the paper's own running examples:
// Livermore loop 1 (Figure 5/6) and discrete convolution (Figure 3).
#include <gtest/gtest.h>

#include "compiler/pfg.hpp"
#include "compiler/slicer.hpp"
#include "isa/assembler.hpp"
#include "sim/functional.hpp"

namespace hidisc::compiler {
namespace {

using isa::Opcode;
using isa::Stream;
using isa::assemble;

// Livermore loop 1: x[k] = q + y[k]*(r*z[k+10] + t*z[k+11]).
const char* kLll1 = R"(
.data
q:  .double 1.5
rr: .double 2.5
tt: .double 0.5
x:  .space 800
y:  .space 800
z:  .space 1000
.text
_start:
  la   r4, x
  la   r5, y
  la   r6, z
  fld  f20, q
  fld  f22, rr
  fld  f24, tt
  li   r7, 0
  li   r8, 100
loop:
  slli r9, r7, 3
  add  r10, r6, r9
  fld  f2, 80(r10)
  fld  f4, 88(r10)
  fmul f6, f22, f2
  fmul f8, f24, f4
  fadd f10, f6, f8
  add  r11, r5, r9
  fld  f12, 0(r11)
  fmul f14, f12, f10
  fadd f16, f20, f14
  add  r12, r4, r9
  fsd  f16, 0(r12)
  addi r7, r7, 1
  blt  r7, r8, loop
  halt
)";

TEST(AccessMembership, SeedsAreAlwaysAccess) {
  const auto p = assemble(kLll1);
  const auto in_as = access_stream_membership(p);
  for (std::size_t i = 0; i < p.code.size(); ++i) {
    const auto& inst = p.code[i];
    if (isa::is_mem(inst.op) || isa::is_control(inst.op) ||
        inst.op == Opcode::HALT)
      EXPECT_TRUE(in_as[i]) << "instr " << i;
    if (isa::is_fp_compute(inst.op))
      EXPECT_FALSE(in_as[i]) << "instr " << i;
  }
}

TEST(AccessMembership, AddressChainsJoinAccessStream) {
  const auto p = assemble(kLll1);
  const auto in_as = access_stream_membership(p);
  // slli/add address arithmetic and the loop induction/bound belong to AS.
  for (std::size_t i = 0; i < p.code.size(); ++i) {
    const auto op = p.code[i].op;
    if (op == Opcode::SLLI || op == Opcode::ADD || op == Opcode::ADDI)
      EXPECT_TRUE(in_as[i]) << "instr " << i;
  }
}

TEST(Separation, Lll1MatchesPaperFigure6) {
  const auto p = assemble(kLll1);
  const auto sep = separate_streams(p);
  // FP compute on the CP, everything else on the AP.
  std::size_t fp_cs = 0, fld_push = 0, sdq_push = 0;
  for (const auto& inst : sep.separated.code) {
    if (isa::is_fp_compute(inst.op) && !inst.ann.compiler_inserted) {
      EXPECT_EQ(inst.ann.stream, Stream::Compute);
      ++fp_cs;
    }
    if (inst.op == Opcode::FLD && inst.ann.push_ldq) ++fld_push;
    if (inst.ann.push_sdq) {
      ++sdq_push;
      EXPECT_EQ(inst.ann.stream, Stream::Compute);
    }
  }
  EXPECT_EQ(fp_cs, 5u);      // 3 fmul + 2 fadd
  // All six loads feed FP compute: q/rr/tt constants and z/z/y elements.
  EXPECT_EQ(fld_push, 6u);
  // Only the final fadd result crosses back (store data).
  EXPECT_EQ(sdq_push, 1u);
  EXPECT_EQ(sep.inserted_pops, 7u);
}

TEST(Separation, InsertedPopsSitDirectlyAfterProducers) {
  const auto p = assemble(kLll1);
  const auto sep = separate_streams(p);
  for (const auto& [pop_idx, producer_idx] : sep.ldq_partner) {
    EXPECT_EQ(producer_idx, pop_idx - 1);
    EXPECT_TRUE(sep.separated.code[producer_idx].ann.push_ldq);
    const auto op = sep.separated.code[pop_idx].op;
    EXPECT_TRUE(op == Opcode::POPLDQ || op == Opcode::POPLDQF);
  }
  for (const auto& [pop_idx, producer_idx] : sep.sdq_partner) {
    EXPECT_EQ(producer_idx, pop_idx - 1);
    EXPECT_TRUE(sep.separated.code[producer_idx].ann.push_sdq);
  }
  EXPECT_EQ(sep.ldq_partner.size() + sep.sdq_partner.size(),
            sep.inserted_pops);
}

TEST(Separation, PopDestinationShadowsProducerDestination) {
  const auto p = assemble(kLll1);
  const auto sep = separate_streams(p);
  for (const auto& [pop_idx, producer_idx] : sep.ldq_partner)
    EXPECT_EQ(sep.separated.code[pop_idx].dst,
              sep.separated.code[producer_idx].dst);
}

// The decisive property: the separated binary computes the same thing.
TEST(Separation, SeparatedBinaryIsFunctionallyEquivalent) {
  const auto p = assemble(kLll1);
  const auto sep = separate_streams(p);
  sim::Functional f1(p), f2(sep.separated);
  f1.run();
  f2.run();
  EXPECT_EQ(f1.memory().digest(), f2.memory().digest());
}

// Paper Figure 3: inner loop of discrete convolution.
TEST(Separation, ConvolutionIsEquivalentToo) {
  const char* src = R"(
.data
xv: .double 1, 2, 3, 4, 5, 6, 7, 8
hv: .double 0.5, 0.25, 0.125, 1, 2, 0.75, 0.3, 1.5
yv: .space 64
.text
_start:
  li   r4, 8
  li   r5, 0             # i
outer:
  cvtif f10, r0          # y = 0
  li   r6, 0             # j
  beq  r5, r0, store     # i == 0: empty inner loop
inner:
  slli r9, r6, 3
  la   r10, xv
  add  r10, r10, r9
  fld  f2, 0(r10)        # x[j]
  sub  r11, r5, r6
  addi r11, r11, -1
  slli r11, r11, 3
  la   r12, hv
  add  r12, r12, r11
  fld  f4, 0(r12)        # h[i-j-1]
  fmul f6, f2, f4
  fadd f10, f10, f6
  addi r6, r6, 1
  blt  r6, r5, inner
store:
  slli r13, r5, 3
  la   r14, yv
  add  r14, r14, r13
  fsd  f10, 0(r14)       # y[i]
  addi r5, r5, 1
  blt  r5, r4, outer
  halt
)";
  const auto p = assemble(src);
  const auto sep = separate_streams(p);
  sim::Functional f1(p), f2(sep.separated);
  f1.run();
  f2.run();
  EXPECT_EQ(f1.memory().digest(), f2.memory().digest());
  // And the convolution itself is right: y[2] = x0*h1 + x1*h0.
  const auto yv = p.data_addr("yv");
  EXPECT_EQ(f2.memory().read<double>(yv + 16), 1 * 0.25 + 2 * 0.5);
}

TEST(Separation, ClosureNoAsReadsOfCsDefsWithoutPop) {
  const auto p = assemble(kLll1);
  const auto sep = separate_streams(p);
  // Per-register last writer stream walking the layout: any AS read must
  // see an AS-side (or popped) definition.  POPSDQ writes on the AS side
  // make CS-produced values visible, so after separation this must hold
  // for every operand that is not a store-data-from-queue case.
  std::vector<Stream> owner(isa::kNumArchRegs, Stream::None);
  for (const auto& inst : sep.separated.code) {
    const auto du = ProgramFlowGraph::extract_def_use(inst);
    const bool on_ap = inst.ann.stream == Stream::Access;
    if (on_ap) {
      for (const int u : {du.use[0], du.use[1]}) {
        if (u < 0) continue;
        EXPECT_NE(owner[u], Stream::Compute)
            << "AP reads CP-only register " << u;
      }
    }
    if (du.def >= 0) {
      // Pops republish the value on their own side; push_ldq/push_sdq make
      // it visible to the other side as well.
      if (inst.ann.push_ldq || inst.ann.push_sdq)
        owner[du.def] = Stream::None;  // visible to both
      else if (owner[du.def] != Stream::None &&
               owner[du.def] != inst.ann.stream)
        owner[du.def] = Stream::None;  // rewritten by the other side
      else
        owner[du.def] = inst.ann.stream;
    }
  }
}

TEST(Separation, FlowSensitivePruningDropsUnreachableTransfers) {
  // The first load's value feeds FP compute (push needed); the second
  // redefines the same register but only access-side reads follow, so the
  // flow-insensitive separator would push it pointlessly and the
  // flow-sensitive one must prune it.
  const char* src = R"(
.data
v: .dword 3
w: .dword 5
o: .space 8
.text
_start:
  ld    r5, v
  cvtif f1, r5
  cvtif f3, r5
  fadd  f2, f1, f3
  ld    r5, w
  slli  r6, r5, 3
  sd    r6, o
  halt
)";
  // (Two computation-side reads keep r5 on producer-site placement, where
  // the pruning applies.)
  const auto prog = isa::assemble(src);
  const auto fi = separate_streams(prog, nullptr, /*flow_sensitive=*/false);
  const auto fs = separate_streams(prog, nullptr, /*flow_sensitive=*/true);
  EXPECT_EQ(fs.pruned_transfers, 1u);
  EXPECT_EQ(fi.pruned_transfers, 0u);
  EXPECT_EQ(fs.inserted_pops + 1, fi.inserted_pops);
  // The pruned variant still computes the same thing.
  sim::Functional f1(prog), f2(fs.separated), f3(fi.separated);
  f1.run();
  f2.run();
  f3.run();
  EXPECT_EQ(f1.memory().digest(), f2.memory().digest());
  EXPECT_EQ(f1.memory().digest(), f3.memory().digest());
}

TEST(Separation, PruningKeepsTransfersAcrossLoopBackEdges) {
  // The def's cross use sits *before* it in layout but is reachable via
  // the loop back edge: the transfer must be kept.
  const char* src = R"(
.data
v: .space 800
o: .space 8
.text
_start:
  la   r4, v
  li   r5, 100
loop:
  cvtif f1, r6
  fadd  f2, f2, f1
  ld   r6, 0(r4)
  addi r4, r4, 8
  addi r5, r5, -1
  bne  r5, r0, loop
  fsd  f2, o
  halt
)";
  const auto prog = isa::assemble(src);
  const auto fs = separate_streams(prog, nullptr, true);
  bool load_pushes = false;
  for (const auto& inst : fs.separated.code)
    if (inst.op == Opcode::LD) load_pushes |= inst.ann.push_ldq;
  EXPECT_TRUE(load_pushes);
  sim::Functional f1(prog), f2(fs.separated);
  f1.run();
  f2.run();
  EXPECT_EQ(f1.memory().digest(), f2.memory().digest());
}

TEST(Separation, IndirectJumpsDisablePruningConservatively) {
  const char* src = R"(
.data
v: .dword 4
.text
_start:
  ld   r5, v
  la   r1, next
  jr   r1
next:
  cvtif f1, r5
  halt
)";
  const auto prog = isa::assemble(src);
  const auto fs = separate_streams(prog, nullptr, true);
  // The jr makes reachability unknowable: the load must keep its push.
  bool load_pushes = false;
  for (const auto& inst : fs.separated.code)
    if (inst.op == Opcode::LD) load_pushes |= inst.ann.push_ldq;
  EXPECT_TRUE(load_pushes);
  EXPECT_EQ(fs.pruned_transfers, 0u);
}

TEST(Separation, RejectsAlreadySeparatedInput) {
  auto p = assemble(kLll1);
  const auto sep = separate_streams(p);
  EXPECT_THROW(separate_streams(sep.separated), std::invalid_argument);
}

TEST(Separation, RejectsQueueOpcodes) {
  const auto p = assemble("pushldq r1\nhalt\n");
  EXPECT_THROW(separate_streams(p), std::invalid_argument);
}

TEST(Separation, CountsAreConsistent) {
  const auto p = assemble(kLll1);
  const auto sep = separate_streams(p);
  EXPECT_EQ(sep.access_count + sep.compute_count, p.code.size());
  EXPECT_EQ(sep.separated.code.size(),
            p.code.size() + sep.inserted_pops);
}

}  // namespace
}  // namespace hidisc::compiler
