// Invariants of the workload data-set generators (beyond the end-to-end
// golden checks in workloads_test): permutation structure, determinism of
// the RNG, DataBuilder layout, and per-workload structural properties.
#include <gtest/gtest.h>

#include <set>

#include "compiler/compile.hpp"
#include "sim/functional.hpp"
#include "workloads/common.hpp"

namespace hidisc::workloads {
namespace {

TEST(Rng, IsDeterministicAndWellDistributed) {
  Rng a(42), b(42), c(43);
  std::set<std::uint64_t> values;
  for (int i = 0; i < 1000; ++i) {
    const auto v = a.next();
    EXPECT_EQ(v, b.next());
    values.insert(v);
  }
  EXPECT_NE(a.next(), c.next());
  EXPECT_EQ(values.size(), 1000u);  // no collisions in 1000 draws
}

TEST(Rng, BelowStaysBelow) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, UnitIsInHalfOpenInterval) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.unit();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(DataBuilder, LayoutAndAlignment) {
  DataBuilder db;
  const auto a = db.add_u8(1);
  const auto b = db.align(8);
  const auto c = db.add_u64(2);
  EXPECT_EQ(a, isa::kDataBase);
  EXPECT_EQ(b % 8, 0u);
  EXPECT_EQ(b, c);
  EXPECT_EQ(db.here(), c + 8);
}

TEST(DataBuilder, FinishInstallsImageAndLabels) {
  DataBuilder db;
  db.add_u64(0x1122334455667788ull);
  isa::Program prog;
  db.finish(prog, {{"x", isa::kDataBase}});
  EXPECT_EQ(prog.data.size(), 8u);
  EXPECT_EQ(prog.data[0], 0x88);
  EXPECT_EQ(prog.data_addr("x"), isa::kDataBase);
}

// The Pointer/Update tables are single-cycle permutations (Sattolo): the
// chase visits every slot exactly once before returning to the start.
TEST(PointerTable, IsSingleCyclePermutation) {
  const auto w = make_pointer(Scale::Test);
  const auto base = w.program.data_addr("table");
  sim::Functional f(w.program);  // just to read the initial image
  const std::uint64_t n = 4096;
  std::uint64_t at = 0;
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < n; ++i) {
    EXPECT_TRUE(seen.insert(at).second) << "revisit before full cycle";
    at = f.memory().read<std::uint64_t>(base + at * 8);
    EXPECT_LT(at, n);
  }
  EXPECT_EQ(at, 0u);  // back to the start after exactly n hops
  EXPECT_EQ(seen.size(), n);
}

TEST(Workloads, ApproxInstructionCountsAreHonest) {
  for (const auto& w : paper_suite(Scale::Test)) {
    sim::Functional f(w.program);
    f.run();
    const double actual = static_cast<double>(f.instructions());
    const double claimed = static_cast<double>(
        w.approx_dynamic_instructions);
    EXPECT_GT(actual, claimed * 0.3) << w.name;
    EXPECT_LT(actual, claimed * 3.0) << w.name;
  }
}

TEST(Workloads, EveryKernelHasNonTrivialStreams) {
  // Each benchmark must exercise the access stream; the FP benchmarks
  // must also exercise the computation stream.
  for (const auto& w : paper_suite(Scale::Test)) {
    const auto sep = compiler::separate_streams(w.program);
    EXPECT_GT(sep.access_count, 4u) << w.name;
    if (w.name == "RayTray" || w.name == "Field" ||
        w.name == "Neighborhood")
      EXPECT_GT(sep.compute_count, 2u) << w.name;
  }
}

TEST(Workloads, ProbableMissBenchmarksGetCmasGroups) {
  // The low-locality kernels must produce CMAS groups at paper scale
  // thresholds scaled down for test data sets.
  compiler::CompileOptions opt;
  opt.cmas.min_misses = 8;
  opt.cmas.miss_rate_threshold = 0.02;
  for (const auto name : {"Pointer", "Update", "TC"}) {
    for (const auto& w : paper_suite(Scale::Test)) {
      if (w.name != name) continue;
      const auto comp = compiler::compile(w.program, opt);
      EXPECT_FALSE(comp.groups.empty()) << name;
    }
  }
}

TEST(Workloads, RayTracerCellsAreNotCmasTargets) {
  // The FP-fed gather must be dropped (DESIGN.md §6.4).
  const auto w = make_raytrace(Scale::Test);
  compiler::CompileOptions opt;
  opt.cmas.min_misses = 4;
  opt.cmas.miss_rate_threshold = 0.01;
  const auto comp = compiler::compile(w.program, opt);
  const auto grid = w.program.data_addr("grid");
  (void)grid;
  for (const auto& g : comp.groups)
    for (const auto t : g.targets) {
      // Targets may only be the (integer-addressed) ray-parameter loads,
      // never the FP-addressed grid gather, which uses a computed base.
      const auto& inst = comp.original.code[t];
      EXPECT_NE(isa::reg_name(inst.src1), "r15")
          << "grid gather became a CMAS target";
    }
}

TEST(Workloads, DifferentSeedsChangeData) {
  const auto a = make_dm(Scale::Test, 1);
  const auto b = make_dm(Scale::Test, 2);
  EXPECT_NE(a.program.data, b.program.data);
}

}  // namespace
}  // namespace hidisc::workloads
