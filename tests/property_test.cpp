// Property-based tests over randomly generated programs.
//
//  * Disassemble -> reassemble is the identity for every representable
//    instruction form.
//  * The HiDISC compiler's stream separation preserves functional
//    behaviour on randomly generated structured kernels (loops mixing
//    integer/FP compute with loads and stores), and all four machine
//    configurations retire exactly the dynamic instruction stream.
#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "compiler/compile.hpp"
#include "isa/assembler.hpp"
#include "isa/disassembler.hpp"
#include "machine/machine.hpp"
#include "sim/functional.hpp"

namespace hidisc {
namespace {

using isa::Opcode;

// ---- random structured kernels -------------------------------------------

// Emits one random loop-body operation using a constrained register pool so
// the program is always well defined (no divides by arbitrary values, no
// indirect jumps).
class KernelGen {
 public:
  explicit KernelGen(std::uint64_t seed) : gen_(seed) {}

  std::string generate(int body_ops, int iterations) {
    std::ostringstream src;
    src << ".data\nbuf: .space 4096\nseeds: .double 1.5, -2.25, 0.75, 3.0\n"
        << ".text\n_start:\n"
        << "  la  r4, buf\n"
        << "  li  r5, " << iterations << "\n"
        << "  la  r6, seeds\n"
        << "  fld f1, 0(r6)\n  fld f2, 8(r6)\n"
        << "  fld f3, 16(r6)\n  fld f4, 24(r6)\n"
        << "  li  r8, 3\n  li r9, -7\n  li r10, 11\n  li r11, 100\n"
        << "loop:\n";
    for (int i = 0; i < body_ops; ++i) src << "  " << random_op() << "\n";
    src << "  addi r5, r5, -1\n"
        << "  bne  r5, r0, loop\n";
    // Persist every pool register so no computation is dead.
    for (int r = 8; r <= 15; ++r)
      src << "  sd   r" << r << ", " << (r - 8) * 8 << "(r4)\n";
    for (int f = 1; f <= 8; ++f)
      src << "  fsd  f" << f << ", " << (56 + f * 8) << "(r4)\n";
    src << "  halt\n";
    return src.str();
  }

 private:
  int pick(int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(gen_);
  }
  std::string ir() { return "r" + std::to_string(pick(8, 15)); }
  std::string fr() { return "f" + std::to_string(pick(1, 8)); }
  std::string off() { return std::to_string(pick(0, 511) * 8); }

  std::string random_op() {
    switch (pick(0, 11)) {
      case 0: return "add  " + ir() + ", " + ir() + ", " + ir();
      case 1: return "sub  " + ir() + ", " + ir() + ", " + ir();
      case 2: return "mul  " + ir() + ", " + ir() + ", " + ir();
      case 3: return "xor  " + ir() + ", " + ir() + ", " + ir();
      case 4:
        return "addi " + ir() + ", " + ir() + ", " +
               std::to_string(pick(-64, 64));
      case 5:
        return "slli " + ir() + ", " + ir() + ", " +
               std::to_string(pick(0, 7));
      case 6: return "fadd " + fr() + ", " + fr() + ", " + fr();
      case 7: return "fmul " + fr() + ", " + fr() + ", " + fr();
      case 8: return "ld   " + ir() + ", " + off() + "(r4)";
      case 9: return "sd   " + ir() + ", " + off() + "(r4)";
      case 10: return "fld  " + fr() + ", " + off() + "(r4)";
      default: return "fsd  " + fr() + ", " + off() + "(r4)";
    }
  }

  std::mt19937_64 gen_;
};

class RandomKernel : public ::testing::TestWithParam<int> {};

TEST_P(RandomKernel, SeparationPreservesBehaviour) {
  KernelGen gen(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  const auto src = gen.generate(/*body_ops=*/24, /*iterations=*/200);
  const auto prog = isa::assemble(src);

  const auto comp = compiler::compile(prog);
  sim::Functional f1(comp.original), f2(comp.separated);
  f1.run();
  f2.run();
  EXPECT_EQ(f1.memory().digest(), f2.memory().digest())
      << "separation changed behaviour for seed " << GetParam();

  // The flow-insensitive separator must agree too (ablation mode).
  compiler::CompileOptions fi;
  fi.flow_sensitive_comm = false;
  const auto comp2 = compiler::compile(prog, fi);
  sim::Functional f3(comp2.separated);
  f3.run();
  EXPECT_EQ(f1.memory().digest(), f3.memory().digest())
      << "flow-insensitive separation diverged for seed " << GetParam();
  EXPECT_GE(comp2.inserted_pops, comp.inserted_pops);
}

TEST_P(RandomKernel, StreamInvariantsHold) {
  KernelGen gen(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  const auto prog = isa::assemble(gen.generate(24, 10));
  const auto sep = compiler::separate_streams(prog);
  for (const auto& inst : sep.separated.code) {
    if (isa::is_mem(inst.op) || isa::is_control(inst.op))
      EXPECT_EQ(inst.ann.stream, isa::Stream::Access)
          << isa::disassemble(inst);
    if (isa::is_fp_compute(inst.op))
      EXPECT_EQ(inst.ann.stream, isa::Stream::Compute)
          << isa::disassemble(inst);
  }
}

TEST_P(RandomKernel, AllPresetsRetireTheWholeTrace) {
  KernelGen gen(static_cast<std::uint64_t>(GetParam()) * 104729 + 5);
  const auto prog = isa::assemble(gen.generate(16, 100));
  const auto comp = compiler::compile(prog);
  sim::Functional fo(comp.original);
  const auto to = fo.run_trace();
  sim::Functional fs(comp.separated);
  const auto ts = fs.run_trace();
  for (const auto preset :
       {machine::Preset::Superscalar, machine::Preset::CPAP,
        machine::Preset::CPCMP, machine::Preset::HiDISC}) {
    const bool sep = machine::uses_separated_binary(preset);
    const auto r = machine::run_machine(sep ? comp.separated : comp.original,
                                        sep ? ts : to, preset);
    EXPECT_EQ(r.instructions, (sep ? ts : to).size())
        << machine::preset_name(preset) << " seed " << GetParam();
    EXPECT_EQ(r.ldq.pushes, r.ldq.pops);
    EXPECT_EQ(r.sdq.pushes, r.sdq.pops);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomKernel, ::testing::Range(0, 12));

// ---- disassemble -> reassemble identity -----------------------------------

class RoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(RoundTrip, DisassembleReassembleIdentity) {
  std::mt19937_64 gen(static_cast<std::uint64_t>(GetParam()) * 31 + 7);
  KernelGen kg(gen());
  const auto prog = isa::assemble(kg.generate(32, 1));
  for (const auto& inst : prog.code) {
    const std::string text = isa::disassemble(inst);
    // Strip any annotation comment before reassembling.
    const auto cut = text.find("  #");
    const auto p2 = isa::assemble(
        (cut == std::string::npos ? text : text.substr(0, cut)) + "\n");
    ASSERT_EQ(p2.code.size(), 1u) << text;
    EXPECT_EQ(p2.code[0].op, inst.op) << text;
    EXPECT_EQ(p2.code[0].dst, inst.dst) << text;
    EXPECT_EQ(p2.code[0].src1, inst.src1) << text;
    EXPECT_EQ(p2.code[0].src2, inst.src2) << text;
    EXPECT_EQ(p2.code[0].imm, inst.imm) << text;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTrip, ::testing::Range(0, 4));

}  // namespace
}  // namespace hidisc
