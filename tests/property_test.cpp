// Property-based tests over randomly generated programs.
//
//  * Disassemble -> reassemble is the identity for every representable
//    instruction form.
//  * The HiDISC compiler's stream separation preserves functional
//    behaviour on randomly generated structured kernels (loops mixing
//    integer/FP compute with loads and stores), and all four machine
//    configurations retire exactly the dynamic instruction stream.
#include <gtest/gtest.h>

#include <random>

#include "compiler/compile.hpp"
#include "fuzz/generator.hpp"
#include "isa/assembler.hpp"
#include "isa/disassembler.hpp"
#include "machine/machine.hpp"
#include "sim/functional.hpp"

namespace hidisc {
namespace {

using isa::Opcode;

// Random structured kernels come from the shared src/fuzz generator (the
// same one hifuzz drives); `generate` draws a per-seed feature mix, so
// these properties cover pointer chases, cross-stream flows, nested
// loops, divides and mixed-width memory — not just the flat op soup the
// tests originally embedded.
using fuzz::KernelGen;

class RandomKernel : public ::testing::TestWithParam<int> {};

TEST_P(RandomKernel, SeparationPreservesBehaviour) {
  KernelGen gen(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  const auto src = gen.generate(/*body_ops=*/24, /*iterations=*/200);
  const auto prog = isa::assemble(src);

  const auto comp = compiler::compile(prog);
  sim::Functional f1(comp.original), f2(comp.separated);
  f1.run();
  f2.run();
  EXPECT_EQ(f1.memory().digest(), f2.memory().digest())
      << "separation changed behaviour for seed " << GetParam();

  // The flow-insensitive separator must agree too (ablation mode).
  compiler::CompileOptions fi;
  fi.flow_sensitive_comm = false;
  const auto comp2 = compiler::compile(prog, fi);
  sim::Functional f3(comp2.separated);
  f3.run();
  EXPECT_EQ(f1.memory().digest(), f3.memory().digest())
      << "flow-insensitive separation diverged for seed " << GetParam();
  EXPECT_GE(comp2.inserted_pops, comp.inserted_pops);
}

TEST_P(RandomKernel, StreamInvariantsHold) {
  KernelGen gen(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  const auto prog = isa::assemble(gen.generate(24, 10));
  const auto sep = compiler::separate_streams(prog);
  for (const auto& inst : sep.separated.code) {
    if (isa::is_mem(inst.op) || isa::is_control(inst.op))
      EXPECT_EQ(inst.ann.stream, isa::Stream::Access)
          << isa::disassemble(inst);
    if (isa::is_fp_compute(inst.op))
      EXPECT_EQ(inst.ann.stream, isa::Stream::Compute)
          << isa::disassemble(inst);
  }
}

TEST_P(RandomKernel, AllPresetsRetireTheWholeTrace) {
  KernelGen gen(static_cast<std::uint64_t>(GetParam()) * 104729 + 5);
  const auto prog = isa::assemble(gen.generate(16, 100));
  const auto comp = compiler::compile(prog);
  sim::Functional fo(comp.original);
  const auto to = fo.run_trace();
  sim::Functional fs(comp.separated);
  const auto ts = fs.run_trace();
  for (const auto preset :
       {machine::Preset::Superscalar, machine::Preset::CPAP,
        machine::Preset::CPCMP, machine::Preset::HiDISC}) {
    const bool sep = machine::uses_separated_binary(preset);
    const auto r = machine::run_machine(sep ? comp.separated : comp.original,
                                        sep ? ts : to, preset);
    EXPECT_EQ(r.instructions, (sep ? ts : to).size())
        << machine::preset_name(preset) << " seed " << GetParam();
    EXPECT_EQ(r.ldq.pushes, r.ldq.pops);
    EXPECT_EQ(r.sdq.pushes, r.sdq.pops);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomKernel, ::testing::Range(0, 12));

// ---- disassemble -> reassemble identity -----------------------------------

class RoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(RoundTrip, DisassembleReassembleIdentity) {
  std::mt19937_64 gen(static_cast<std::uint64_t>(GetParam()) * 31 + 7);
  KernelGen kg(gen());
  const auto prog = isa::assemble(kg.generate(32, 1));
  for (const auto& inst : prog.code) {
    const std::string text = isa::disassemble(inst);
    // Strip any annotation comment before reassembling.
    const auto cut = text.find("  #");
    const auto p2 = isa::assemble(
        (cut == std::string::npos ? text : text.substr(0, cut)) + "\n");
    ASSERT_EQ(p2.code.size(), 1u) << text;
    EXPECT_EQ(p2.code[0].op, inst.op) << text;
    EXPECT_EQ(p2.code[0].dst, inst.dst) << text;
    EXPECT_EQ(p2.code[0].src1, inst.src1) << text;
    EXPECT_EQ(p2.code[0].src2, inst.src2) << text;
    EXPECT_EQ(p2.code[0].imm, inst.imm) << text;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTrip, ::testing::Range(0, 4));

}  // namespace
}  // namespace hidisc
