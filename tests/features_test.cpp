// Feature-level tests for the mechanisms added on top of the basic
// pipeline: consumer-site communication placement, CMAS value-liveness and
// the fire-and-forget prefetch path, fork modes (paper vs chaining), the
// prefetch buffer, and the SCQ-style runahead bound.
#include <gtest/gtest.h>

#include "compiler/compile.hpp"
#include "isa/assembler.hpp"
#include "machine/machine.hpp"
#include "sim/functional.hpp"

namespace hidisc {
namespace {

using isa::Opcode;
using isa::Stream;

// A loop-carried FP accumulator stored once after the loop: the classic
// case where producer-site communication would push every iteration.
const char* kAccumulator = R"(
.data
vals: .space 8192
out:  .space 8
.text
_start:
  la   r4, vals
  li   r5, 1024
  cvtif f1, r0
loop:
  fld  f2, 0(r4)
  fadd f1, f1, f2
  addi r4, r4, 8
  addi r5, r5, -1
  bne  r5, r0, loop
  la   r6, out
  fsd  f1, 0(r6)
  halt
)";

TEST(ConsumerSite, AccumulatorUsesOneTransfer) {
  const auto prog = isa::assemble(kAccumulator);
  sim::Functional f(prog);
  const auto trace = f.run_trace();
  const auto sep = compiler::separate_streams(prog, &trace);
  EXPECT_GE(sep.consumer_site_regs, 1u);
  // The accumulator's defs must NOT carry per-iteration push_sdq flags.
  for (const auto& inst : sep.separated.code)
    if (inst.op == Opcode::FADD) EXPECT_FALSE(inst.ann.push_sdq);
  // Exactly one PUSHSDQF (inserted before the store).
  std::size_t pushes = 0;
  for (const auto& inst : sep.separated.code)
    if (inst.op == Opcode::PUSHSDQF) {
      ++pushes;
      EXPECT_TRUE(inst.ann.compiler_inserted);
      EXPECT_EQ(inst.ann.stream, Stream::Compute);
    }
  EXPECT_EQ(pushes, 1u);
}

TEST(ConsumerSite, DynamicTransfersMatchConsumptions) {
  const auto prog = isa::assemble(kAccumulator);
  sim::Functional f0(prog);
  const auto trace = f0.run_trace();
  const auto sep = compiler::separate_streams(prog, &trace);
  // Run separated and confirm exactly one SDQ round-trip happened: the
  // machine's queue stats record it.
  sim::Functional fs(sep.separated);
  const auto ts = fs.run_trace();
  const auto r = machine::run_machine(sep.separated, ts,
                                      machine::Preset::CPAP);
  EXPECT_EQ(r.sdq.pushes, 1u);
  EXPECT_EQ(r.sdq.pops, 1u);
  // The per-iteration LDQ traffic (loads feeding the FP add) remains.
  EXPECT_EQ(r.ldq.pushes, 1024u);
}

TEST(ConsumerSite, EquivalenceStillHolds) {
  const auto prog = isa::assemble(kAccumulator);
  sim::Functional f0(prog);
  const auto trace = f0.run_trace();
  const auto sep = compiler::separate_streams(prog, &trace);
  sim::Functional f1(prog), f2(sep.separated);
  f1.run();
  f2.run();
  EXPECT_EQ(f1.memory().digest(), f2.memory().digest());
}

TEST(ConsumerSite, MixedStreamDefsFallBackToProducerSite) {
  // r7 is defined by BOTH streams (a load and an FP-derived integer), so
  // consumer-site placement would be unsound; the compiler must keep
  // producer-site transfers for it.
  const char* src = R"(
.data
v: .dword 9
o: .space 8
.text
_start:
  li   r5, 64
loop:
  ld   r7, v
  cvtif f1, r7
  fadd f2, f1, f1
  cvtfi r7, f2
  sd   r7, o
  addi r5, r5, -1
  bne  r5, r0, loop
  halt
)";
  const auto prog = isa::assemble(src);
  sim::Functional f0(prog);
  const auto trace = f0.run_trace();
  const auto sep = compiler::separate_streams(prog, &trace);
  sim::Functional f1(prog), f2(sep.separated);
  f1.run();
  f2.run();
  EXPECT_EQ(f1.memory().digest(), f2.memory().digest());
}

// Chase kernel: CMAS loads feed the slice itself.
const char* kChase = R"(
.data
tbl: .space 131072
res: .space 8
.text
_start:
  la   r4, tbl
  li   r5, 0
  li   r6, 4000
loop:
  slli r7, r5, 3
  add  r7, r7, r4
  ld   r5, 0(r7)
  addi r6, r6, -1
  bne  r6, r0, loop
  la   r8, res
  sd   r5, 0(r8)
  halt
)";

// Strided kernel: CMAS load values feed nothing address-relevant.
const char* kStrided = R"(
.data
arr: .space 524288
.text
_start:
  la   r4, arr
  li   r5, 4096
loop:
  ld   r6, 0(r4)
  add  r7, r7, r6
  addi r4, r4, 128
  addi r5, r5, -1
  bne  r5, r0, loop
  halt
)";

isa::Program chase_program() {
  // Fill the table with a shifted self-map so the chase cycles safely.
  auto prog = isa::assemble(kChase);
  const auto base = prog.data_addr("tbl") - isa::kDataBase;
  for (std::uint64_t i = 0; i < 16384; ++i) {
    const std::uint64_t next = (i * 7919 + 1) % 16384;
    std::memcpy(prog.data.data() + base + i * 8, &next, 8);
  }
  return prog;
}

TEST(Cmas, ChaseLoadsAreValueLive) {
  auto prog = chase_program();
  const auto comp = compiler::compile(prog);
  bool saw_live = false;
  for (const auto& inst : comp.original.code)
    if (inst.ann.in_cmas && isa::is_load(inst.op))
      saw_live |= inst.ann.cmas_value_live;
  EXPECT_TRUE(saw_live);
}

TEST(Cmas, StridedLoadsAreFireAndForget) {
  auto prog = isa::assemble(kStrided);
  const auto comp = compiler::compile(prog);
  bool any_cmas_load = false;
  for (const auto& inst : comp.original.code)
    if (inst.ann.in_cmas && isa::is_load(inst.op)) {
      any_cmas_load = true;
      EXPECT_FALSE(inst.ann.cmas_value_live);
    }
  EXPECT_TRUE(any_cmas_load);
}

struct PreparedRun {
  compiler::Compilation comp;
  sim::Trace orig;
  sim::Trace sep;
};

PreparedRun prep(const isa::Program& prog) {
  PreparedRun p{compiler::compile(prog), {}, {}};
  sim::Functional fo(p.comp.original);
  p.orig = fo.run_trace();
  sim::Functional fs(p.comp.separated);
  p.sep = fs.run_trace();
  return p;
}

TEST(ForkModes, ChainingIsGapFreePaperModeLeavesHoles) {
  const auto p = prep(isa::assemble(kStrided));
  machine::MachineConfig paper_mode;
  paper_mode.cmp_chaining = false;
  paper_mode.cmp.prefetch_buffer = 32;  // ample: isolate the fork mode
  machine::MachineConfig chaining = paper_mode;
  chaining.cmp_chaining = true;
  chaining.cmp_targets_per_fork = 256;  // long-lived slice instances
  const auto r_paper = machine::run_machine(p.comp.separated, p.sep,
                                            machine::Preset::HiDISC,
                                            paper_mode);
  const auto r_chain = machine::run_machine(p.comp.separated, p.sep,
                                            machine::Preset::HiDISC,
                                            chaining);
  // Chaining covers every slice micro-op (2 per iteration); the paper-mode
  // fork jumps forward when the CMP falls behind and leaves holes.
  EXPECT_GT(r_chain.cmas_uops, r_paper.cmas_uops);
  EXPECT_LT(r_paper.cmas_uops, p.sep.size());
  // Paper-mode instances start at the trigger distance, so on this
  // DRAM-bound stream some of their fills complete in time; chaining from
  // the fetch position can never build a lead against equal fill demand
  // (every prefetch is an in-flight late hit).
  EXPECT_GT(r_paper.l1.useful_prefetches, 0u);
  EXPECT_GT(r_paper.cmas_forks, 0u);
  EXPECT_GT(r_chain.cmas_forks, 0u);
}

TEST(PrefetchBuffer, SmallerBufferCoversFewerMisses) {
  const auto p = prep(isa::assemble(kStrided));
  machine::MachineConfig small_buf;
  small_buf.cmp.prefetch_buffer = 1;
  machine::MachineConfig big_buf;
  big_buf.cmp.prefetch_buffer = 32;
  const auto r_small = machine::run_machine(p.comp.separated, p.sep,
                                            machine::Preset::HiDISC,
                                            small_buf);
  const auto r_big = machine::run_machine(p.comp.separated, p.sep,
                                          machine::Preset::HiDISC, big_buf);
  EXPECT_LT(r_big.l1.demand_misses(), r_small.l1.demand_misses());
  EXPECT_LE(r_big.cycles, r_small.cycles);
}

TEST(Runahead, TinyBoundStarvesTheCmp) {
  const auto p = prep(isa::assemble(kStrided));
  machine::MachineConfig tiny;
  tiny.cmp.prefetch_buffer = 32;
  // A slip bound below the fork lookahead forbids any scanning at all:
  // the SCQ keeps the CMP pinned to the front end.
  tiny.cmp_max_runahead = 16;
  machine::MachineConfig wide = tiny;
  wide.cmp_max_runahead = 1024;
  const auto r_tiny = machine::run_machine(p.comp.separated, p.sep,
                                           machine::Preset::HiDISC, tiny);
  const auto r_wide = machine::run_machine(p.comp.separated, p.sep,
                                           machine::Preset::HiDISC, wide);
  EXPECT_LT(r_tiny.l1.prefetches, r_wide.l1.prefetches);
  EXPECT_GT(r_tiny.cycles, r_wide.cycles);
}

TEST(SerialGroups, ChaseForksAlwaysChainEvenInPaperMode) {
  auto prog = chase_program();
  const auto p = prep(prog);
  machine::MachineConfig paper_mode;
  paper_mode.cmp_chaining = false;
  const auto r = machine::run_machine(p.comp.separated, p.sep,
                                      machine::Preset::HiDISC, paper_mode);
  // The chase is serial: the CMP cannot teleport ahead, so HiDISC ends up
  // within a whisker of the baseline (never dramatically faster).
  const auto base = machine::run_machine(p.comp.original, p.orig,
                                         machine::Preset::Superscalar);
  EXPECT_LT(static_cast<double>(base.cycles) / r.cycles, 1.25);
}

TEST(DynamicDistance, RecoversFromABadStart) {
  // TC with a deliberately too-short fork distance: the controller must
  // grow it and recover most of the gap to the well-tuned static setting.
  const auto p = prep(isa::assemble(kStrided));
  machine::MachineConfig bad;
  bad.cmp_fork_lookahead = 64;
  machine::MachineConfig dyn = bad;
  dyn.cmp_dynamic_distance = true;
  const auto r_bad = machine::run_machine(p.comp.separated, p.sep,
                                          machine::Preset::HiDISC, bad);
  const auto r_dyn = machine::run_machine(p.comp.separated, p.sep,
                                          machine::Preset::HiDISC, dyn);
  EXPECT_GT(r_dyn.distance_adaptations, 0u);
  EXPECT_LE(r_dyn.cycles, r_bad.cycles * 101 / 100);  // never clearly worse
}

TEST(DynamicDistance, OffByDefault) {
  const auto p = prep(isa::assemble(kStrided));
  const auto r = machine::run_machine(p.comp.separated, p.sep,
                                      machine::Preset::HiDISC);
  EXPECT_EQ(r.distance_adaptations, 0u);
  EXPECT_EQ(r.final_fork_lookahead, machine::MachineConfig{}.cmp_fork_lookahead);
}

// Loads striding exactly one L1 way-ring (8 KiB): every access maps to
// the same set, so anything prefetched more than four lines ahead is
// evicted before use — structurally wasted prefetching.
const char* kSetConflict = R"(
.data
arr: .space 4194304
.text
_start:
  la   r4, arr
  li   r5, 512
loop:
  ld   r6, 0(r4)
  add  r7, r7, r6
  addi r4, r4, 8192
  addi r5, r5, -1
  bne  r5, r0, loop
  halt
)";

TEST(AdaptiveRange, SuppressesSelfEvictingPrefetchGroups) {
  // The CMP's prefetches for the set-conflicting stride die unused; the
  // range controller must notice the waste and suppress forks, and
  // performance must not get worse.
  const auto p = prep(isa::assemble(kSetConflict));
  machine::MachineConfig wasteful;  // paper-mode forks, ample buffer
  wasteful.cmp.prefetch_buffer = 32;
  machine::MachineConfig adaptive = wasteful;
  adaptive.cmp_adaptive_range = true;
  const auto r_w = machine::run_machine(p.comp.separated, p.sep,
                                        machine::Preset::HiDISC, wasteful);
  const auto r_a = machine::run_machine(p.comp.separated, p.sep,
                                        machine::Preset::HiDISC, adaptive);
  EXPECT_GT(r_a.cmas_forks_suppressed, 0u);
  EXPECT_LT(r_a.l1.prefetches, r_w.l1.prefetches);
  EXPECT_LE(r_a.cycles, r_w.cycles * 102 / 100);
}

TEST(AdaptiveRange, LeavesUsefulGroupsAlone) {
  // Default configuration: prefetches are consumed, nothing is wasted, so
  // the controller must not interfere.
  const auto p = prep(isa::assemble(kStrided));
  machine::MachineConfig cfg;
  cfg.cmp_adaptive_range = true;
  const auto r = machine::run_machine(p.comp.separated, p.sep,
                                      machine::Preset::HiDISC, cfg);
  const auto base = machine::run_machine(p.comp.separated, p.sep,
                                         machine::Preset::HiDISC);
  EXPECT_EQ(r.cmas_forks_suppressed, 0u);
  EXPECT_EQ(r.cycles, base.cycles);
}

TEST(Triggers, FiringIsRecordedAndBounded) {
  const auto p = prep(isa::assemble(kStrided));
  const auto r = machine::run_machine(p.comp.separated, p.sep,
                                      machine::Preset::HiDISC);
  EXPECT_GT(r.cmas_forks, 0u);
  EXPECT_GT(r.cmas_uops, 0u);
  // Micro-ops per fork can't exceed what one instance allows by much
  // (address-chain ops + loads per target).
  EXPECT_LT(r.cmas_uops, p.sep.size());
}

}  // namespace
}  // namespace hidisc
