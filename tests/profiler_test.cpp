// Cache profiling, CMAS extraction, and trigger selection tests.
#include <gtest/gtest.h>

#include "compiler/cmas.hpp"
#include "compiler/compile.hpp"
#include "compiler/profiler.hpp"
#include "isa/assembler.hpp"
#include "sim/functional.hpp"
#include "workloads/common.hpp"

namespace hidisc::compiler {
namespace {

using isa::Opcode;
using isa::assemble;

// A strided scan over a large array: every load visits a new cache block,
// so the load's miss rate is ~1.
const char* kStridedMisses = R"(
.data
arr: .space 262144
.text
_start:
  la   r4, arr
  li   r5, 2048
loop:
  ld   r6, 0(r4)
  add  r7, r7, r6
  addi r4, r4, 128
  addi r5, r5, -1
  bne  r5, r0, loop
  halt
)";

TEST(Profiler, AttributesMissesToTheStridedLoad) {
  const auto p = assemble(kStridedMisses);
  sim::Functional f(p);
  const auto trace = f.run_trace();
  const auto profile = profile_cache(p, trace, mem::MemConfig{});
  const auto hot = profile.probable_miss_instructions(0.5, 64);
  ASSERT_EQ(hot.size(), 1u);
  EXPECT_EQ(p.code[hot[0]].op, Opcode::LD);
  EXPECT_EQ(profile.per_instr[hot[0]].mem_accesses, 2048u);
  EXPECT_GT(profile.per_instr[hot[0]].miss_rate(), 0.9);
  EXPECT_EQ(profile.dynamic_instructions, trace.size());
}

TEST(Profiler, HighLocalityLoadIsNotProbableMiss) {
  const auto p = assemble(R"(
.data
v: .dword 7
.text
_start:
  li r5, 5000
loop:
  ld r6, v
  addi r5, r5, -1
  bne r5, r0, loop
  halt
)");
  sim::Functional f(p);
  const auto trace = f.run_trace();
  const auto profile = profile_cache(p, trace, mem::MemConfig{});
  EXPECT_TRUE(profile.probable_miss_instructions(0.05, 64).empty());
}

TEST(Profiler, SelectTriggerFindsInstructionAtDistance) {
  // Synthetic trace: repeating block of 10 static instructions.
  sim::Trace trace;
  for (int rep = 0; rep < 200; ++rep)
    for (std::int32_t i = 0; i < 10; ++i)
      trace.push_back({i, i == 9 ? 0 : i + 1, 0, 0});
  // Target = instruction 7; at distance 20 (two reps back) the same slot
  // is instruction 7 again.
  const auto trig = select_trigger(trace, {7}, 20);
  EXPECT_EQ(trig, 7);
  // Distance 23 lands on instruction 4.
  EXPECT_EQ(select_trigger(trace, {7}, 23), 4);
}

TEST(Profiler, SelectTriggerEmptyInputs) {
  sim::Trace trace;
  EXPECT_EQ(select_trigger(trace, {1}, 10), -1);
  trace.push_back({0, 0, 0, 0});
  EXPECT_EQ(select_trigger(trace, {}, 10), -1);
}

TEST(BackwardSlice, FollowsAddressChainOnly) {
  const auto p = assemble(kStridedMisses);
  // Find the ld instruction.
  std::int32_t ld_idx = -1;
  for (std::size_t i = 0; i < p.code.size(); ++i)
    if (p.code[i].op == Opcode::LD) ld_idx = static_cast<std::int32_t>(i);
  ASSERT_GE(ld_idx, 0);
  const auto slice = backward_slice(p, ld_idx);
  // Slice: la (base), addi (pointer bump), the ld itself.  The checksum
  // add, the branch and the counter are not address-relevant... except the
  // counter feeds nothing in the address chain.
  for (const auto m : slice) {
    const auto op = p.code[m].op;
    EXPECT_TRUE(op == Opcode::LD || op == Opcode::ADDI ||
                op == Opcode::ADD)
        << "unexpected op in slice at " << m;
    EXPECT_FALSE(isa::is_store(op));
    EXPECT_FALSE(isa::is_control(op));
  }
  // The address-forming la/addi chain must be present.
  bool has_ld = false;
  for (const auto m : slice) has_ld |= p.code[m].op == Opcode::LD;
  EXPECT_TRUE(has_ld);
}

TEST(Cmas, ExtractMarksMembersAndTrigger) {
  auto p = assemble(kStridedMisses);
  sim::Functional f(p);
  const auto trace = f.run_trace();
  const auto profile = profile_cache(p, trace, mem::MemConfig{});
  CmasOptions opt;
  opt.trigger_distance = 50;
  const auto groups = extract_cmas(p, profile, trace, opt);
  ASSERT_EQ(groups.size(), 1u);
  const auto& g = groups[0];
  EXPECT_FALSE(g.members.empty());
  EXPECT_GE(g.trigger, 0);
  EXPECT_TRUE(p.code[g.trigger].ann.is_trigger);
  EXPECT_EQ(p.code[g.trigger].ann.trigger_group, g.id);
  for (const auto m : g.members) {
    EXPECT_TRUE(p.code[m].ann.in_cmas);
    EXPECT_EQ(p.code[m].ann.cmas_group, g.id);
  }
}

TEST(Cmas, FpFedAddressChainsAreDropped) {
  // The load's address derives from CVTFI (floating point): the CMP cannot
  // pre-execute it, so no CMAS group may target this load.
  const auto src = R"(
.data
arr: .space 262144
st: .double 0.0
sc: .double 1.37
.text
_start:
  la   r4, arr
  li   r5, 3000
  fld  f1, st
  fld  f2, sc
loop:
  fadd f1, f1, f2
  cvtfi r6, f1
  slli r7, r6, 6
  andi r7, r7, 262143
  add  r8, r7, r4
  ld   r9, 0(r8)
  add  r10, r10, r9
  addi r5, r5, -1
  bne  r5, r0, loop
  halt
)";
  auto p = assemble(src);
  sim::Functional f(p);
  const auto trace = f.run_trace();
  const auto profile = profile_cache(p, trace, mem::MemConfig{});
  CmasOptions opt;
  opt.min_misses = 16;
  opt.miss_rate_threshold = 0.01;
  const auto groups = extract_cmas(p, profile, trace, opt);
  for (const auto& g : groups)
    for (const auto t : g.targets)
      EXPECT_NE(p.code[t].op, Opcode::LD)
          << "FP-fed load must not become a CMAS target";
}

TEST(Compile, EndToEndProducesBothBinaries) {
  const auto p = assemble(kStridedMisses);
  CompileOptions opt;
  opt.cmas.min_misses = 64;
  const auto c = compile(p, opt);
  EXPECT_EQ(c.original.code.size(), p.code.size());
  EXPECT_GT(c.separated.code.size(), p.code.size());
  EXPECT_FALSE(c.groups.empty());
  EXPECT_EQ(c.access_count + c.compute_count, p.code.size());
  // CMAS annotations survive separation (travel with instructions).
  std::size_t cmas_in_sep = 0;
  for (const auto& inst : c.separated.code)
    cmas_in_sep += inst.ann.in_cmas ? 1 : 0;
  EXPECT_GT(cmas_in_sep, 0u);
}

TEST(Compile, CmasMembersAreWithinAccessStream) {
  // Paper §4.2: "the CMAS is a subset of the Access Stream".
  const auto c = compile(assemble(kStridedMisses));
  for (const auto& inst : c.separated.code)
    if (inst.ann.in_cmas)
      EXPECT_EQ(inst.ann.stream, isa::Stream::Access);
}

TEST(Compile, DisableCmasLeavesNoMarks)
{
  CompileOptions opt;
  opt.enable_cmas = false;
  const auto c = compile(assemble(kStridedMisses), opt);
  for (const auto& inst : c.original.code) {
    EXPECT_FALSE(inst.ann.in_cmas);
    EXPECT_FALSE(inst.ann.is_trigger);
  }
  EXPECT_TRUE(c.groups.empty());
}

}  // namespace
}  // namespace hidisc::compiler
