// End-to-end hiserve test: a real hiserved daemon (forked + exec'd from
// HISERVED_PATH), two concurrent clients submitting the same plan, a
// worker SIGKILLed mid-run via the daemon's chaos hook, and a warm
// re-submission — asserting the acceptance criteria directly:
//
//   * both clients' merged Results are bit-identical to a local
//     lab::run_plan of the same plan,
//   * the chaos kill shows up as a retry (and a worker restart), not a
//     failure,
//   * the overlapping submissions are deduplicated across clients
//     (dedup_hits > 0, and strictly fewer jobs ran than cells were
//     requested),
//   * a warm re-submission simulates zero cells,
//
// all read from the service stats JSON endpoint over the wire.
#include <gtest/gtest.h>
#include <signal.h>
#include <spawn.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "lab/plan.hpp"
#include "lab/runner.hpp"
#include "lab/serialize.hpp"
#include "serve/client.hpp"
#include "serve/worker.hpp"

namespace fs = std::filesystem;

namespace {

using namespace hidisc;

#ifndef HISERVED_PATH
#error "HISERVED_PATH must be defined by the build"
#endif

struct TempDir {
  std::string path;
  TempDir() {
    char tmpl[] = "/tmp/hiserve-e2e-XXXXXX";
    path = ::mkdtemp(tmpl);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

// A running daemon, SIGTERMed and reaped on destruction.
class Daemon {
 public:
  Daemon(const std::string& sock, const std::string& cache_dir,
         const std::vector<std::string>& extra_args = {}) {
    std::vector<std::string> args = {HISERVED_PATH, "--socket", sock,
                                     "--workers",   "2",        "--quiet"};
    if (!cache_dir.empty()) {
      args.push_back("--cache-dir");
      args.push_back(cache_dir);
    } else {
      args.push_back("--no-cache");
    }
    for (const auto& a : extra_args) args.push_back(a);
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (auto& a : args) argv.push_back(a.data());
    argv.push_back(nullptr);
    const int rc = ::posix_spawn(&pid_, HISERVED_PATH, nullptr, nullptr,
                                 argv.data(), nullptr);
    EXPECT_EQ(rc, 0) << "posix_spawn " << HISERVED_PATH;
    if (rc != 0) pid_ = -1;
  }

  // SIGTERM drain; returns the daemon's exit status (wait result).
  int stop() {
    if (pid_ <= 0) return -1;
    ::kill(pid_, SIGTERM);
    int status = 0;
    ::waitpid(pid_, &status, 0);
    pid_ = -1;
    return status;
  }

  ~Daemon() {
    if (pid_ > 0) {
      ::kill(pid_, SIGKILL);
      ::waitpid(pid_, nullptr, 0);
    }
  }

  pid_t pid() const { return pid_; }

 private:
  pid_t pid_ = -1;
};

serve::PlanRequest test_request() {
  serve::PlanRequest req;
  req.plan = "fig10";
  req.scale = "test";
  return req;
}

// Pulls one stats counter out of the service stats JSON without a JSON
// parser: the emitter writes flat `"name": value` pairs.
std::uint64_t stat(const std::string& json, const std::string& name) {
  const std::string needle = "\"" + name + "\": ";
  const auto pos = json.find(needle);
  EXPECT_NE(pos, std::string::npos) << "missing stat " << name << "\n" << json;
  if (pos == std::string::npos) return ~0ull;
  return std::strtoull(json.c_str() + pos + needle.size(), nullptr, 10);
}

void expect_identical_to_local(const lab::PlanRun& remote,
                               const lab::PlanRun& local) {
  ASSERT_EQ(remote.cells.size(), local.cells.size());
  for (std::size_t i = 0; i < local.cells.size(); ++i) {
    ASSERT_TRUE(remote.cells[i].ok()) << "cell " << i << ": "
                                      << remote.cells[i].error;
    EXPECT_TRUE(lab::results_identical(remote.cells[i].result,
                                       local.cells[i].result))
        << "cell " << i << " diverged from local run";
    EXPECT_EQ(remote.cells[i].key, local.cells[i].key) << "cell " << i;
  }
}

TEST(ServeE2E, TwoClientsChaosKillAndWarmRerun) {
  TempDir dir;
  const std::string sock = dir.path + "/s.sock";
  const std::string cache = dir.path + "/cache";

  // The ground truth: the same plan run locally, no cache.
  const serve::PlanRequest req = test_request();
  const lab::ExperimentPlan plan = serve::materialize_plan(req);
  lab::RunOptions lopt;
  lopt.threads = 2;
  lopt.cache_dir.clear();
  const lab::PlanRun local = lab::run_plan(plan, lopt);
  ASSERT_TRUE(local.ok());

  // Daemon with the chaos hook armed: the worker holding the 3rd job
  // assignment is SIGKILLed mid-run, forcing the crash -> retry path.
  Daemon daemon(sock, cache, {"--chaos-kill-assign", "3"});

  // Two clients submit the same plan concurrently from separate threads
  // (each opens its own connection, like two hilab processes would).
  serve::ConnectedRun runs[2];
  std::string errors[2];
  std::vector<std::thread> clients;
  for (int i = 0; i < 2; ++i)
    clients.emplace_back([&, i] {
      try {
        serve::ClientOptions copt;
        copt.endpoint = sock;
        runs[i] = serve::run_plan_connected(req, plan, copt);
      } catch (const std::exception& e) {
        errors[i] = e.what();
      }
    });
  for (auto& t : clients) t.join();
  ASSERT_TRUE(errors[0].empty()) << errors[0];
  ASSERT_TRUE(errors[1].empty()) << errors[1];

  // Bit-identical merged results for both clients, despite the kill.
  expect_identical_to_local(runs[0].run, local);
  expect_identical_to_local(runs[1].run, local);

  const std::string stats1 = serve::fetch_service_stats(sock);
  // The chaos kill surfaced as a retry and a worker restart, not a
  // failure...
  EXPECT_GE(stat(stats1, "retries"), 1u) << stats1;
  EXPECT_GE(stat(stats1, "worker_restarts"), 1u) << stats1;
  EXPECT_EQ(stat(stats1, "jobs_failed"), 0u) << stats1;
  EXPECT_EQ(stat(stats1, "cells_failed"), 0u) << stats1;
  // ...and the overlapping submissions shared jobs across clients: the
  // daemon ran one job per distinct cell, not one per requested cell.
  EXPECT_GE(stat(stats1, "dedup_hits"), 1u) << stats1;
  EXPECT_GE(stat(stats1, "cross_client_shared_jobs"), 1u) << stats1;
  EXPECT_EQ(stat(stats1, "jobs_done"), plan.cells.size()) << stats1;
  EXPECT_EQ(stat(stats1, "cells_total"), 2 * plan.cells.size()) << stats1;

  // Warm re-submission: everything is served from the daemon's completed
  // memo (or the shared disk cache) — zero new simulations.
  {
    serve::ClientOptions copt;
    copt.endpoint = sock;
    const serve::ConnectedRun warm = serve::run_plan_connected(req, plan, copt);
    expect_identical_to_local(warm.run, local);
    EXPECT_EQ(warm.run.simulated, 0u);
    EXPECT_EQ(warm.run.cache_hits, plan.cells.size());
  }
  const std::string stats2 = serve::fetch_service_stats(sock);
  EXPECT_EQ(stat(stats2, "jobs_done"), plan.cells.size()) << stats2;
  EXPECT_EQ(stat(stats2, "plans_completed"), 3u) << stats2;

  // Orderly drain on SIGTERM.
  const int status = daemon.stop();
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

// A second daemon against the same cache directory serves the whole plan
// from disk: the multi-process-safe ResultCache is the cross-daemon
// layer of the result store.
TEST(ServeE2E, FreshDaemonServesFromSharedDiskCache) {
  TempDir dir;
  const std::string cache = dir.path + "/cache";
  const serve::PlanRequest req = test_request();
  const lab::ExperimentPlan plan = serve::materialize_plan(req);

  {
    const std::string sock = dir.path + "/s1.sock";
    Daemon d1(sock, cache);
    serve::ClientOptions copt;
    copt.endpoint = sock;
    const auto cold = serve::run_plan_connected(req, plan, copt);
    EXPECT_EQ(cold.run.simulated, plan.cells.size());
    d1.stop();
  }
  {
    const std::string sock = dir.path + "/s2.sock";
    Daemon d2(sock, cache);
    serve::ClientOptions copt;
    copt.endpoint = sock;
    const auto warm = serve::run_plan_connected(req, plan, copt);
    EXPECT_EQ(warm.run.simulated, 0u);
    EXPECT_EQ(warm.run.cache_hits, plan.cells.size());
    const std::string stats = serve::fetch_service_stats(sock);
    EXPECT_EQ(stat(stats, "disk_cache_hits"), plan.cells.size()) << stats;
    d2.stop();
  }
}

// Submitting an unknown plan name is a per-request error: the daemon
// answers with an Error frame naming the known plans and stays up.
TEST(ServeE2E, UnknownPlanIsAnErrorFrameNotACrash) {
  TempDir dir;
  const std::string sock = dir.path + "/s.sock";
  Daemon daemon(sock, "");

  serve::PlanRequest bad;
  bad.plan = "no-such-plan";
  lab::ExperimentPlan empty;
  serve::ClientOptions copt;
  copt.endpoint = sock;
  try {
    (void)serve::run_plan_connected(bad, empty, copt);
    FAIL() << "unknown plan should have thrown";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("unknown plan"), std::string::npos)
        << e.what();
  }

  // The daemon survived and still serves good plans.
  const serve::PlanRequest req = test_request();
  const lab::ExperimentPlan plan = serve::materialize_plan(req);
  const auto run = serve::run_plan_connected(req, plan, copt);
  EXPECT_TRUE(run.run.ok());
  const int status = daemon.stop();
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

}  // namespace
