// End-to-end hiserve test: a real hiserved daemon (forked + exec'd from
// HISERVED_PATH), two concurrent clients submitting the same plan, a
// worker SIGKILLed mid-run via the daemon's chaos hook, and a warm
// re-submission — asserting the acceptance criteria directly:
//
//   * both clients' merged Results are bit-identical to a local
//     lab::run_plan of the same plan,
//   * the chaos kill shows up as a retry (and a worker restart), not a
//     failure,
//   * the overlapping submissions are deduplicated across clients
//     (dedup_hits > 0, and strictly fewer jobs ran than cells were
//     requested),
//   * a warm re-submission simulates zero cells,
//
// all read from the service stats JSON endpoint over the wire.
#include <gtest/gtest.h>
#include <signal.h>
#include <spawn.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "lab/plan.hpp"
#include "lab/runner.hpp"
#include "lab/serialize.hpp"
#include "serve/client.hpp"
#include "serve/journal.hpp"
#include "serve/transport.hpp"
#include "serve/worker.hpp"

namespace fs = std::filesystem;

namespace {

using namespace hidisc;

#ifndef HISERVED_PATH
#error "HISERVED_PATH must be defined by the build"
#endif

struct TempDir {
  std::string path;
  TempDir() {
    char tmpl[] = "/tmp/hiserve-e2e-XXXXXX";
    path = ::mkdtemp(tmpl);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

// A running daemon, SIGTERMed and reaped on destruction.
class Daemon {
 public:
  Daemon(const std::string& sock, const std::string& cache_dir,
         const std::vector<std::string>& extra_args = {}) {
    std::vector<std::string> args = {HISERVED_PATH, "--socket", sock,
                                     "--workers",   "2",        "--quiet"};
    if (!cache_dir.empty()) {
      args.push_back("--cache-dir");
      args.push_back(cache_dir);
    } else {
      args.push_back("--no-cache");
    }
    for (const auto& a : extra_args) args.push_back(a);
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (auto& a : args) argv.push_back(a.data());
    argv.push_back(nullptr);
    const int rc = ::posix_spawn(&pid_, HISERVED_PATH, nullptr, nullptr,
                                 argv.data(), nullptr);
    EXPECT_EQ(rc, 0) << "posix_spawn " << HISERVED_PATH;
    if (rc != 0) pid_ = -1;
  }

  // SIGTERM drain; returns the daemon's exit status (wait result).
  int stop() {
    if (pid_ <= 0) return -1;
    ::kill(pid_, SIGTERM);
    int status = 0;
    ::waitpid(pid_, &status, 0);
    pid_ = -1;
    return status;
  }

  // Simulated crash: SIGKILL with no drain, reaped immediately — the
  // scenario the job journal exists for.
  void kill9() {
    if (pid_ <= 0) return;
    ::kill(pid_, SIGKILL);
    ::waitpid(pid_, nullptr, 0);
    pid_ = -1;
  }

  ~Daemon() {
    if (pid_ > 0) {
      ::kill(pid_, SIGKILL);
      ::waitpid(pid_, nullptr, 0);
    }
  }

  pid_t pid() const { return pid_; }

 private:
  pid_t pid_ = -1;
};

serve::PlanRequest test_request() {
  serve::PlanRequest req;
  req.plan = "fig10";
  req.scale = "test";
  return req;
}

// Pulls one stats counter out of the service stats JSON without a JSON
// parser: the emitter writes flat `"name": value` pairs.
std::uint64_t stat(const std::string& json, const std::string& name) {
  const std::string needle = "\"" + name + "\": ";
  const auto pos = json.find(needle);
  EXPECT_NE(pos, std::string::npos) << "missing stat " << name << "\n" << json;
  if (pos == std::string::npos) return ~0ull;
  return std::strtoull(json.c_str() + pos + needle.size(), nullptr, 10);
}

void expect_identical_to_local(const lab::PlanRun& remote,
                               const lab::PlanRun& local) {
  ASSERT_EQ(remote.cells.size(), local.cells.size());
  for (std::size_t i = 0; i < local.cells.size(); ++i) {
    ASSERT_TRUE(remote.cells[i].ok()) << "cell " << i << ": "
                                      << remote.cells[i].error;
    EXPECT_TRUE(lab::results_identical(remote.cells[i].result,
                                       local.cells[i].result))
        << "cell " << i << " diverged from local run";
    EXPECT_EQ(remote.cells[i].key, local.cells[i].key) << "cell " << i;
  }
}

TEST(ServeE2E, TwoClientsChaosKillAndWarmRerun) {
  TempDir dir;
  const std::string sock = dir.path + "/s.sock";
  const std::string cache = dir.path + "/cache";

  // The ground truth: the same plan run locally, no cache.
  const serve::PlanRequest req = test_request();
  const lab::ExperimentPlan plan = serve::materialize_plan(req);
  lab::RunOptions lopt;
  lopt.threads = 2;
  lopt.cache_dir.clear();
  const lab::PlanRun local = lab::run_plan(plan, lopt);
  ASSERT_TRUE(local.ok());

  // Daemon with the chaos hook armed: the worker holding the 3rd job
  // assignment is SIGKILLed mid-run, forcing the crash -> retry path.
  Daemon daemon(sock, cache, {"--chaos-kill-assign", "3"});

  // Two clients submit the same plan concurrently from separate threads
  // (each opens its own connection, like two hilab processes would).
  serve::ConnectedRun runs[2];
  std::string errors[2];
  std::vector<std::thread> clients;
  for (int i = 0; i < 2; ++i)
    clients.emplace_back([&, i] {
      try {
        serve::ClientOptions copt;
        copt.endpoint = sock;
        runs[i] = serve::run_plan_connected(req, plan, copt);
      } catch (const std::exception& e) {
        errors[i] = e.what();
      }
    });
  for (auto& t : clients) t.join();
  ASSERT_TRUE(errors[0].empty()) << errors[0];
  ASSERT_TRUE(errors[1].empty()) << errors[1];

  // Bit-identical merged results for both clients, despite the kill.
  expect_identical_to_local(runs[0].run, local);
  expect_identical_to_local(runs[1].run, local);

  const std::string stats1 = serve::fetch_service_stats(sock);
  // The chaos kill surfaced as a retry and a worker restart, not a
  // failure...
  EXPECT_GE(stat(stats1, "retries"), 1u) << stats1;
  EXPECT_GE(stat(stats1, "worker_restarts"), 1u) << stats1;
  EXPECT_EQ(stat(stats1, "jobs_failed"), 0u) << stats1;
  EXPECT_EQ(stat(stats1, "cells_failed"), 0u) << stats1;
  // ...and the overlapping submissions shared jobs across clients: the
  // daemon ran one job per distinct cell, not one per requested cell.
  EXPECT_GE(stat(stats1, "dedup_hits"), 1u) << stats1;
  EXPECT_GE(stat(stats1, "cross_client_shared_jobs"), 1u) << stats1;
  EXPECT_EQ(stat(stats1, "jobs_done"), plan.cells.size()) << stats1;
  EXPECT_EQ(stat(stats1, "cells_total"), 2 * plan.cells.size()) << stats1;

  // Warm re-submission: everything is served from the daemon's completed
  // memo (or the shared disk cache) — zero new simulations.
  {
    serve::ClientOptions copt;
    copt.endpoint = sock;
    const serve::ConnectedRun warm = serve::run_plan_connected(req, plan, copt);
    expect_identical_to_local(warm.run, local);
    EXPECT_EQ(warm.run.simulated, 0u);
    EXPECT_EQ(warm.run.cache_hits, plan.cells.size());
  }
  const std::string stats2 = serve::fetch_service_stats(sock);
  EXPECT_EQ(stat(stats2, "jobs_done"), plan.cells.size()) << stats2;
  EXPECT_EQ(stat(stats2, "plans_completed"), 3u) << stats2;

  // Orderly drain on SIGTERM.
  const int status = daemon.stop();
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

// A second daemon against the same cache directory serves the whole plan
// from disk: the multi-process-safe ResultCache is the cross-daemon
// layer of the result store.
TEST(ServeE2E, FreshDaemonServesFromSharedDiskCache) {
  TempDir dir;
  const std::string cache = dir.path + "/cache";
  const serve::PlanRequest req = test_request();
  const lab::ExperimentPlan plan = serve::materialize_plan(req);

  {
    const std::string sock = dir.path + "/s1.sock";
    Daemon d1(sock, cache);
    serve::ClientOptions copt;
    copt.endpoint = sock;
    const auto cold = serve::run_plan_connected(req, plan, copt);
    EXPECT_EQ(cold.run.simulated, plan.cells.size());
    d1.stop();
  }
  {
    const std::string sock = dir.path + "/s2.sock";
    Daemon d2(sock, cache);
    serve::ClientOptions copt;
    copt.endpoint = sock;
    const auto warm = serve::run_plan_connected(req, plan, copt);
    EXPECT_EQ(warm.run.simulated, 0u);
    EXPECT_EQ(warm.run.cache_hits, plan.cells.size());
    const std::string stats = serve::fetch_service_stats(sock);
    EXPECT_EQ(stat(stats, "disk_cache_hits"), plan.cells.size()) << stats;
    d2.stop();
  }
}

// Submitting an unknown plan name is a per-request error: the daemon
// answers with an Error frame naming the known plans and stays up.
TEST(ServeE2E, UnknownPlanIsAnErrorFrameNotACrash) {
  TempDir dir;
  const std::string sock = dir.path + "/s.sock";
  Daemon daemon(sock, "");

  serve::PlanRequest bad;
  bad.plan = "no-such-plan";
  lab::ExperimentPlan empty;
  serve::ClientOptions copt;
  copt.endpoint = sock;
  try {
    (void)serve::run_plan_connected(bad, empty, copt);
    FAIL() << "unknown plan should have thrown";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("unknown plan"), std::string::npos)
        << e.what();
  }

  // The daemon survived and still serves good plans.
  const serve::PlanRequest req = test_request();
  const lab::ExperimentPlan plan = serve::materialize_plan(req);
  const auto run = serve::run_plan_connected(req, plan, copt);
  EXPECT_TRUE(run.run.ok());
  const int status = daemon.stop();
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

// --- chaos hardening (PR-9) ------------------------------------------------

// Client-side deterministic fault injection: a corrupted SubmitPlan (the
// daemon's decoder poisons and hangs up on us), then a mid-stream
// connection drop after the plan token was issued.  The client must
// survive both — reconnect, re-attach by token, deduplicate redelivered
// cells — and finish with results bit-identical to a local run.
TEST(ServeE2E, ClientChaosSurvivesCorruptionAndDrop) {
  TempDir dir;
  const std::string sock = dir.path + "/s.sock";
  const serve::PlanRequest req = test_request();
  const lab::ExperimentPlan plan = serve::materialize_plan(req);
  lab::RunOptions lopt;
  lopt.threads = 2;
  lopt.cache_dir.clear();
  const lab::PlanRun local = lab::run_plan(plan, lopt);
  ASSERT_TRUE(local.ok());

  Daemon daemon(sock, dir.path + "/cache");
  serve::ClientOptions copt;
  copt.endpoint = sock;
  copt.chaos_net = "11:corrupt@2,drop@6,split";
  copt.max_reconnects = 12;
  const serve::ConnectedRun run = serve::run_plan_connected(req, plan, copt);

  expect_identical_to_local(run.run, local);
  EXPECT_GE(run.reconnects, 1u);
  EXPECT_GE(run.resumes, 1u);  // the post-token drop re-attached, not
                               // re-submitted
  const int status = daemon.stop();
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

// Daemon-side fault injection (--chaos-net): every accepted connection
// draws a seeded fault schedule, and the process-global budgets
// guarantee the campaign converges to a clean completion.  The injected
// faults must be visible in the service stats.
TEST(ServeE2E, DaemonChaosCampaignConverges) {
  TempDir dir;
  const std::string sock = dir.path + "/s.sock";
  const serve::PlanRequest req = test_request();
  const lab::ExperimentPlan plan = serve::materialize_plan(req);
  lab::RunOptions lopt;
  lopt.threads = 2;
  lopt.cache_dir.clear();
  const lab::PlanRun local = lab::run_plan(plan, lopt);
  ASSERT_TRUE(local.ok());

  Daemon daemon(sock, dir.path + "/cache",
                {"--chaos-net", "13:drop@7x3,stall@2=5"});
  serve::ClientOptions copt;
  copt.endpoint = sock;
  copt.max_reconnects = 12;
  const serve::ConnectedRun run = serve::run_plan_connected(req, plan, copt);

  expect_identical_to_local(run.run, local);
  EXPECT_GE(run.reconnects, 1u);

  const std::string stats = serve::fetch_service_stats(sock);
  EXPECT_GE(stat(stats, "chaos_conns"), 2u) << stats;
  EXPECT_GE(stat(stats, "chaos_drops_injected"), 1u) << stats;
  EXPECT_LE(stat(stats, "chaos_drops_injected"), 3u) << stats;
  EXPECT_GE(stat(stats, "chaos_stalls_injected"), 1u) << stats;
  EXPECT_EQ(stat(stats, "jobs_failed"), 0u) << stats;
  EXPECT_EQ(stat(stats, "cells_failed"), 0u) << stats;
  const int status = daemon.stop();
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

// The tentpole scenario end to end: SIGKILL the daemon mid-plan, start a
// fresh daemon on the same socket + cache (exercising stale-socket
// replacement), and let the same client ride through it.  The client
// must reconnect and re-attach by token; the new daemon must replay the
// journal, recover the plan, and serve every journaled cell from the
// shared disk cache instead of re-simulating it; the merged results must
// be bit-identical to a local run.
TEST(ServeE2E, KillRestartRecoverResume) {
  TempDir dir;
  const std::string sock = dir.path + "/s.sock";
  const std::string cache = dir.path + "/cache";
  const std::string journal = cache + "/journal.hsjl";
  const serve::PlanRequest req = test_request();
  const lab::ExperimentPlan plan = serve::materialize_plan(req);
  lab::RunOptions lopt;
  lopt.threads = 2;
  lopt.cache_dir.clear();
  const lab::PlanRun local = lab::run_plan(plan, lopt);
  ASSERT_TRUE(local.ok());

  // One worker, so the plan is still in flight when the axe falls.
  Daemon first(sock, cache, {"--workers", "1"});

  serve::ConnectedRun run;
  std::string error;
  std::thread client([&] {
    try {
      serve::ClientOptions copt;
      copt.endpoint = sock;
      copt.max_reconnects = 25;
      run = serve::run_plan_connected(req, plan, copt);
    } catch (const std::exception& e) {
      error = e.what();
    }
  });

  // Wait until at least 3 cells hit the journal, then SIGKILL.
  const auto journaled_cells = [&] {
    std::ifstream in(journal);
    std::size_t n = 0;
    std::string line;
    while (std::getline(in, line))
      if (line.find(" cell ") != std::string::npos) ++n;
    return n;
  };
  for (int waited = 0; journaled_cells() < 3 && waited < 60000; waited += 50)
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ASSERT_GE(journaled_cells(), 3u) << "plan never started journaling";
  first.kill9();

  // A fresh daemon on the same socket path (stale file, no live
  // listener -> replaced) and the same cache + journal.
  Daemon second(sock, cache);
  client.join();
  ASSERT_TRUE(error.empty()) << error;

  expect_identical_to_local(run.run, local);
  EXPECT_GE(run.reconnects, 1u);
  EXPECT_GE(run.resumes, 1u);

  const std::string stats = serve::fetch_service_stats(sock);
  EXPECT_EQ(stat(stats, "journal_plans_recovered"), 1u) << stats;
  const std::uint64_t recovered = stat(stats, "journal_cells_recovered");
  EXPECT_GE(recovered, 3u) << stats;
  // Every journaled cell came back as a disk-cache hit (the worker
  // writes the cache before reporting, so a journaled cell is always
  // cached): zero warm cells were re-simulated.
  EXPECT_GE(stat(stats, "disk_cache_hits"), recovered) << stats;
  EXPECT_EQ(stat(stats, "jobs_done"), plan.cells.size()) << stats;
  EXPECT_EQ(stat(stats, "jobs_failed"), 0u) << stats;
  EXPECT_EQ(stat(stats, "cells_failed"), 0u) << stats;
  EXPECT_GE(stat(stats, "resumes"), 1u) << stats;

  const int status = second.stop();
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);

  // The journal records the full recovered trajectory: a re-recorded
  // plan, its cells, and the final done marker.
  const serve::JournalReplay replayed = serve::JobJournal::replay(journal);
  ASSERT_EQ(replayed.plans.size(), 1u);
  EXPECT_TRUE(replayed.plans[0].complete);
  EXPECT_EQ(replayed.plans[0].done_count(), plan.cells.size());
}

// A client that handshakes and then goes silent must not hold resources
// forever: the daemon reaps it after --client-idle-timeout, while a
// healthy (heartbeating) client on the same daemon finishes untouched.
TEST(ServeE2E, SilentClientIsReapedHealthyClientSurvives) {
  TempDir dir;
  const std::string sock = dir.path + "/s.sock";
  Daemon daemon(sock, dir.path + "/cache", {"--client-idle-timeout", "2"});

  // The stuck client: Hello, HelloOk, then nothing — no Pings, no plan.
  serve::Conn stuck = serve::connect_to(sock);
  stuck.send_frame(serve::Frame{serve::MsgType::Hello,
                                serve::kv_encode({{"proto", "1"}})});
  ASSERT_TRUE(stuck.recv_frame().has_value());  // HelloOk

  // A healthy client with a heartbeat faster than the idle timeout.
  const serve::PlanRequest req = test_request();
  const lab::ExperimentPlan plan = serve::materialize_plan(req);
  serve::ClientOptions copt;
  copt.endpoint = sock;
  copt.heartbeat_ms = 500;
  const serve::ConnectedRun run = serve::run_plan_connected(req, plan, copt);
  EXPECT_TRUE(run.run.ok());
  EXPECT_EQ(run.reconnects, 0u);  // the reaper must not touch the living

  // The reaper fires on its own schedule; poll the stats for it.
  std::uint64_t reaped = 0;
  for (int waited = 0; waited < 15000; waited += 200) {
    reaped = stat(serve::fetch_service_stats(sock), "clients_dropped_idle");
    if (reaped >= 1) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }
  EXPECT_GE(reaped, 1u);
  const int status = daemon.stop();
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

}  // namespace
