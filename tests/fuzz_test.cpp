// Tests for the fuzzing subsystem itself: generator determinism and
// legality, oracle verdicts on clean and fault-injected kernels, the
// delta-debugging shrinker, and the campaign driver.
#include <gtest/gtest.h>

#include <set>

#include "fuzz/campaign.hpp"
#include "fuzz/generator.hpp"
#include "fuzz/oracle.hpp"
#include "fuzz/shrink.hpp"
#include "isa/assembler.hpp"

namespace hidisc::fuzz {
namespace {

TEST(Generator, SameSeedSameKernel) {
  KernelGen a(42), b(42);
  EXPECT_EQ(to_source(a.generate_random()), to_source(b.generate_random()));
}

TEST(Generator, DifferentSeedsDiffer) {
  KernelGen a(1), b(2);
  EXPECT_NE(to_source(a.generate_random()), to_source(b.generate_random()));
}

TEST(Generator, EveryKernelAssembles) {
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    KernelGen gen(seed);
    const auto src = to_source(gen.generate_random());
    EXPECT_NO_THROW((void)isa::assemble(src)) << "seed " << seed;
  }
}

TEST(Generator, LegacySignatureMatchesSeedShape) {
  // The property tests drive the generator through generate(body, iters);
  // it must stay deterministic and produce a halting, assemblable kernel.
  KernelGen a(7), b(7);
  const auto sa = a.generate(16, 10);
  EXPECT_EQ(sa, b.generate(16, 10));
  const auto prog = isa::assemble(sa);
  EXPECT_GT(prog.code.size(), 10u);
}

TEST(Oracle, CleanKernelsPassAllOracles) {
  for (std::uint64_t seed = 100; seed < 110; ++seed) {
    KernelGen gen(seed);
    const auto rep = run_oracles(to_source(gen.generate_random()));
    EXPECT_TRUE(rep.ok()) << "seed " << seed << ": " << rep.signature
                          << " — " << rep.detail;
    EXPECT_GT(rep.dynamic_instructions, 0u);
  }
}

// Every fault kind must be caught by some oracle stage — this is the
// self-test that the differential pipeline actually has teeth.
class FaultDetection : public ::testing::TestWithParam<Fault> {};

TEST_P(FaultDetection, InjectedFaultIsCaught) {
  // A fixed mid-size kernel guarantees queue traffic (injection sites).
  KernelGen gen(42);
  GenOptions go;
  go.body_ops = 24;
  go.iterations = 50;
  const auto src = to_source(gen.generate_kernel(go));
  OracleOptions oo;
  oo.fault = GetParam();
  const auto rep = run_oracles(src, oo);
  ASSERT_TRUE(rep.fault_applied);
  EXPECT_FALSE(rep.ok());
  EXPECT_NE(rep.signature, "ok");
}

INSTANTIATE_TEST_SUITE_P(Kinds, FaultDetection,
                         ::testing::Values(Fault::DropPush, Fault::DropPop,
                                           Fault::MisStream));

TEST(Shrinker, MinimizesInjectedFaultBelowTwentyInstructions) {
  // The acceptance bar from the issue: an injected separator fault on a
  // ~100-instruction kernel shrinks to <= 20 instructions.
  KernelGen gen(5);
  GenOptions go;
  go.body_ops = 24;
  go.iterations = 50;
  const auto kernel = gen.generate_kernel(go);
  OracleOptions oo;
  oo.fault = Fault::DropPush;
  const auto rep = run_oracles(to_source(kernel), oo);
  ASSERT_FALSE(rep.ok());
  const auto before = isa::assemble(to_source(kernel)).code.size();
  const auto outcome = shrink_kernel(kernel, oo, rep.signature);
  ASSERT_TRUE(outcome.reproduced);
  const auto after =
      isa::assemble(to_source(outcome.kernel)).code.size();
  EXPECT_LT(after, before);
  EXPECT_LE(after, 20u);
  // The shrunk kernel still fails with the same signature.
  const auto rep2 = run_oracles(to_source(outcome.kernel), oo);
  EXPECT_EQ(rep2.signature, rep.signature);
}

TEST(Campaign, SeedDerivationIsStableAndSpread) {
  // Kernel seeds must be reproducible across runs and not collide for
  // nearby run indices (splitmix64 output).
  EXPECT_EQ(derive_seed(1, 0), derive_seed(1, 0));
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 100; ++i) seen.insert(derive_seed(1, i));
  EXPECT_EQ(seen.size(), 100u);
}

TEST(Campaign, ShortFixedSeedRunIsClean) {
  CampaignOptions co;
  co.seed = 1;
  co.runs = 20;
  const auto res = run_campaign(co);
  EXPECT_EQ(res.runs_done, 20);
  EXPECT_TRUE(res.ok()) << res.failures.front().report.signature;
  EXPECT_GT(res.dynamic_instructions, 0u);
}

TEST(Campaign, FaultyOracleProducesShrunkFailures) {
  // With a fault injected into every run the campaign must report it,
  // deduplicate by signature, and hand back a minimized reproducer.
  CampaignOptions co;
  co.seed = 3;
  co.runs = 6;
  co.oracle.fault = Fault::DropPush;
  co.max_distinct_failures = 2;
  const auto res = run_campaign(co);
  ASSERT_FALSE(res.ok());
  for (const auto& f : res.failures) {
    EXPECT_NE(f.report.signature, "ok");
    EXPECT_GT(f.minimized_instructions, 0u);
    EXPECT_LE(f.minimized_instructions, 30u);
    // Reproducibility: the recorded kernel seed regenerates the failure.
    KernelGen gen(f.kernel_seed);
    const auto rep =
        run_oracles(to_source(gen.generate_random(co.limits)), co.oracle);
    EXPECT_EQ(rep.signature, f.report.signature);
  }
}

}  // namespace
}  // namespace hidisc::fuzz
