// Hand-written decoupled assembly (the paper's Figure 3 style: explicit
// queue opcodes, EOD tokens, slip-control tokens) running on the timing
// machines, plus front-end paths that only procedure calls exercise
// (JAL/JR through the return-address stack).
#include <gtest/gtest.h>

#include "compiler/slicer.hpp"
#include "isa/assembler.hpp"
#include "machine/machine.hpp"
#include "sim/functional.hpp"

namespace hidisc {
namespace {

using isa::Stream;

// Annotates a hand-written program: queue pushes/pops already explicit,
// so only the stream tags are needed.
isa::Program annotate_by_table(isa::Program prog,
                               const std::vector<Stream>& streams) {
  EXPECT_EQ(prog.code.size(), streams.size());
  for (std::size_t i = 0; i < prog.code.size(); ++i)
    prog.code[i].ann.stream = streams[i];
  return prog;
}

TEST(HandDecoupled, ProducerConsumerViaLdqOnTimingMachine) {
  // AP pushes 20 loaded values; CP pops and accumulates; AP signals EOD;
  // CP exits via BEOD.  The streams are tagged by hand.  (The batch must
  // fit in the 32-entry LDQ: with one in-order front end, a sequential
  // produce-everything-then-consume layout deadlocks past queue capacity —
  // see SequentialBatchBeyondQueueCapacityDeadlocks below.)
  const char* src = R"(
.data
vals: .space 800
out:  .space 8
.text
_start:
  la   r4, vals
  li   r5, 20
loop:
  ld   r6, 0(r4)
  pushldq r6
  addi r4, r4, 8
  addi r5, r5, -1
  bne  r5, r0, loop
  puteod
cp_entry:
  popldq r8
  add  r9, r9, r8
  beod done
  j    cp_entry
done:
  pushsdq r9
  popsdq r10
  la   r11, out
  sd   r10, 0(r11)
  halt
)";
  auto prog = isa::assemble(src);
  // Stream tags: the load loop + stores are AP work; pops + adds are CP.
  std::vector<Stream> tags(prog.code.size(), Stream::Access);
  const auto cp_entry = prog.code_index("cp_entry");
  const auto done = prog.code_index("done");
  for (std::int32_t i = cp_entry; i < done; ++i) tags[i] = Stream::Compute;
  tags[done] = Stream::Compute;  // pushsdq runs on the CP
  prog = annotate_by_table(prog, tags);

  // Functional result first.
  sim::Functional f(prog);
  const auto trace = f.run_trace();
  const auto out = f.memory().read<std::uint64_t>(prog.data_addr("out"));
  EXPECT_EQ(out, 0u);  // vals is all zeros; the protocol matters, not data

  // And the same binary on the decoupled timing machine.
  const auto r = machine::run_machine(prog, trace, machine::Preset::CPAP);
  EXPECT_EQ(r.instructions, trace.size());
  EXPECT_EQ(r.ldq.pushes, r.ldq.pops);      // 20 values + 1 EOD
  EXPECT_EQ(r.ldq.pushes, 21u);
  EXPECT_EQ(r.sdq.pushes, 1u);
}

TEST(HandDecoupled, SequentialBatchBeyondQueueCapacityDeadlocks) {
  // Producing 100 values before any consumer instruction is fetched
  // overflows the 32-entry LDQ; with one in-order front end the machine
  // cannot make progress and the watchdog must catch it.  This is why the
  // compiler never emits such layouts (pushes and pops interleave under
  // one control flow).
  const char* src = R"(
.text
_start:
  li   r5, 100
produce:
  pushldq r5
  addi r5, r5, -1
  bne  r5, r0, produce
consume:
  li   r6, 100
drain:
  popldq r7
  addi r6, r6, -1
  bne  r6, r0, drain
  halt
)";
  auto prog = isa::assemble(src);
  std::vector<Stream> tags(prog.code.size(), Stream::Access);
  const auto consume = prog.code_index("consume");
  for (std::size_t i = consume; i + 1 < prog.code.size(); ++i)
    tags[i] = Stream::Compute;
  prog = annotate_by_table(prog, tags);
  sim::Functional f(prog);
  const auto trace = f.run_trace();
  machine::MachineConfig cfg;
  cfg.watchdog_cycles = 20'000;
  machine::Machine m(prog, trace, machine::Preset::CPAP, cfg);
  EXPECT_THROW((void)m.run(), std::runtime_error);
}

TEST(HandDecoupled, BeodFallthroughKeepsDataQueued) {
  // BEOD with a data entry at the head must not consume it.
  const char* src = R"(
.text
_start:
  li   r1, 42
  pushldq r1
  beod never
  popldq r2
  halt
never:
  li   r2, 0
  halt
)";
  auto prog = isa::assemble(src);
  for (auto& inst : prog.code) inst.ann.stream = Stream::Access;
  prog.code[3].ann.stream = Stream::Compute;  // popldq on the CP
  prog.code[2].ann.stream = Stream::Compute;  // beod on the CP
  sim::Functional f(prog);
  const auto trace = f.run_trace();
  EXPECT_EQ(f.reg(2), 42);
  const auto r = machine::run_machine(prog, trace, machine::Preset::CPAP);
  EXPECT_EQ(r.instructions, trace.size());
}

TEST(HandDecoupled, ScqTokensThrottleOnTimingMachine) {
  // CMP-style producer puts slip tokens, AP-style consumer gets them.
  const char* src = R"(
.text
_start:
  li   r5, 50
loop:
  putscq
  getscq
  addi r5, r5, -1
  bne  r5, r0, loop
  halt
)";
  auto prog = isa::assemble(src);
  for (auto& inst : prog.code) inst.ann.stream = Stream::Access;
  prog.code[1].ann.stream = Stream::Compute;  // putscq from the other side
  sim::Functional f(prog);
  const auto trace = f.run_trace();
  const auto r = machine::run_machine(prog, trace, machine::Preset::CPAP);
  EXPECT_EQ(r.instructions, trace.size());
  EXPECT_EQ(r.scq.pushes, 50u);
  EXPECT_EQ(r.scq.pops, 50u);
}

TEST(Calls, JalJrThroughRasOnTimingMachine) {
  // Nested calls: the RAS should predict the returns, so mispredict counts
  // stay near zero.
  const char* src = R"(
.text
_start:
  li   r5, 200
loop:
  jal  outer
  addi r5, r5, -1
  bne  r5, r0, loop
  halt
outer:
  mv   r10, ra
  jal  inner
  mv   ra, r10
  jr   ra
inner:
  addi r6, r6, 1
  jr   ra
)";
  const auto prog = isa::assemble(src);
  sim::Functional f(prog);
  const auto trace = f.run_trace();
  EXPECT_EQ(f.reg(6), 200);
  const auto r = machine::run_machine(prog, trace,
                                      machine::Preset::Superscalar);
  EXPECT_EQ(r.instructions, trace.size());
  // Loop branch may mispredict at the boundary; returns should not.
  EXPECT_LT(r.branch.mispredicts, 10u);
}

TEST(Calls, CorruptedReturnPredictsWrongButExecutesRight) {
  // An indirect jump the RAS cannot know: prediction misses, semantics
  // hold.
  const char* src = R"(
.text
_start:
  li   r5, 30
loop:
  la   r1, target
  jr   r1
target:
  addi r6, r6, 1
  addi r5, r5, -1
  bne  r5, r0, loop
  halt
)";
  const auto prog = isa::assemble(src);
  sim::Functional f(prog);
  const auto trace = f.run_trace();
  EXPECT_EQ(f.reg(6), 30);
  const auto r = machine::run_machine(prog, trace,
                                      machine::Preset::Superscalar);
  EXPECT_EQ(r.instructions, trace.size());
  EXPECT_GT(r.fetch_stall_branch_cycles, 0u);  // unpredicted jr redirects
}

}  // namespace
}  // namespace hidisc
