// Bimodal predictor, BTB and RAS behaviour.
#include <gtest/gtest.h>

#include "uarch/branch_predictor.hpp"

namespace hidisc::uarch {
namespace {

TEST(Predictor, RejectsNonPowerOfTwoSizes) {
  EXPECT_THROW(BimodalPredictor(1000), std::invalid_argument);
  EXPECT_THROW(BimodalPredictor(2048, 300), std::invalid_argument);
}

TEST(Predictor, LearnsAlwaysTakenLoopBranch) {
  BimodalPredictor bp;
  int mispredicts = 0;
  for (int i = 0; i < 100; ++i)
    mispredicts += bp.update(10, /*taken=*/true, /*target=*/3) ? 1 : 0;
  // First update misses the BTB target; afterwards everything is right.
  EXPECT_LE(mispredicts, 1);
  EXPECT_EQ(bp.stats().lookups, 100u);
}

TEST(Predictor, LearnsNotTaken) {
  BimodalPredictor bp;
  // Counters initialize weakly-taken: the first not-taken updates train it.
  int mispredicts = 0;
  for (int i = 0; i < 50; ++i)
    mispredicts += bp.update(5, false, 9) ? 1 : 0;
  EXPECT_LE(mispredicts, 1);
  const auto p = bp.predict(5);
  EXPECT_FALSE(p.taken);
}

TEST(Predictor, AlternatingBranchMispredictsOften) {
  BimodalPredictor bp;
  int mispredicts = 0;
  for (int i = 0; i < 100; ++i)
    mispredicts += bp.update(8, i % 2 == 0, 20) ? 1 : 0;
  EXPECT_GE(mispredicts, 40);  // 2-bit counters thrash on alternation
}

TEST(Predictor, BtbTargetChangeIsMispredict) {
  BimodalPredictor bp;
  for (int i = 0; i < 4; ++i) bp.update(12, true, 100);
  EXPECT_FALSE(bp.update(12, true, 100));
  EXPECT_TRUE(bp.update(12, true, 200));  // same direction, new target
}

TEST(Predictor, DistinctPcsTrainIndependently) {
  BimodalPredictor bp;
  for (int i = 0; i < 10; ++i) {
    bp.update(100, true, 5);
    bp.update(101, false, 6);
  }
  EXPECT_TRUE(bp.predict(100).taken);
  EXPECT_FALSE(bp.predict(101).taken);
}

TEST(Predictor, RasPairsCallsAndReturns) {
  BimodalPredictor bp;
  bp.push_ras(11);
  bp.push_ras(22);
  EXPECT_EQ(bp.pop_ras(), 22);
  EXPECT_EQ(bp.pop_ras(), 11);
}

TEST(Predictor, RasWrapsWhenFull) {
  BimodalPredictor bp(2048, 512, /*ras_size=*/4);
  for (int i = 0; i < 6; ++i) bp.push_ras(i);
  // The newest four survive: 5, 4, 3, 2.
  EXPECT_EQ(bp.pop_ras(), 5);
  EXPECT_EQ(bp.pop_ras(), 4);
  EXPECT_EQ(bp.pop_ras(), 3);
  EXPECT_EQ(bp.pop_ras(), 2);
}

TEST(GShare, LearnsHistoryPatternBimodalCannot) {
  // Period-3 pattern T T N: bimodal's single counter thrashes, gshare's
  // history-indexed counters lock on.
  BranchPredictor bimodal(2048, 512, 8, PredictorKind::Bimodal);
  BranchPredictor gshare(2048, 512, 8, PredictorKind::GShare);
  int mb = 0, mg = 0;
  for (int i = 0; i < 3000; ++i) {
    const bool taken = i % 3 != 2;
    mb += bimodal.update(40, taken, 7) ? 1 : 0;
    mg += gshare.update(40, taken, 7) ? 1 : 0;
  }
  EXPECT_LT(mg, mb / 2) << "gshare should dominate on periodic history";
  EXPECT_LT(mg, 100);
}

TEST(GShare, ResetClearsHistory) {
  BranchPredictor gshare(2048, 512, 8, PredictorKind::GShare);
  for (int i = 0; i < 100; ++i) gshare.update(3, i % 2 == 0, 9);
  gshare.reset();
  EXPECT_EQ(gshare.stats().lookups, 0u);
  EXPECT_TRUE(gshare.predict(3).taken);  // back to weakly-taken
}

TEST(Predictor, ResetClearsTraining) {
  BimodalPredictor bp;
  for (int i = 0; i < 10; ++i) bp.update(3, false, 1);
  bp.reset();
  EXPECT_TRUE(bp.predict(3).taken);  // back to weakly-taken init
  EXPECT_EQ(bp.stats().lookups, 0u);
}

}  // namespace
}  // namespace hidisc::uarch
