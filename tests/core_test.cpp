// OoOCore timing behaviour in isolation: issue-width limits, dependence
// chains, load latencies, memory disambiguation / forwarding, queue
// push/pop timing, and structural stalls.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "uarch/core.hpp"

namespace hidisc::uarch {
namespace {

using isa::Instruction;
using isa::Opcode;
using isa::ir;

Instruction make_add(int dst, int s1, int s2) {
  Instruction i;
  i.op = Opcode::ADD;
  i.dst = ir(static_cast<std::uint8_t>(dst));
  i.src1 = ir(static_cast<std::uint8_t>(s1));
  i.src2 = ir(static_cast<std::uint8_t>(s2));
  return i;
}

Instruction make_load(int dst, int base, std::int64_t off = 0) {
  Instruction i;
  i.op = Opcode::LD;
  i.dst = ir(static_cast<std::uint8_t>(dst));
  i.src1 = ir(static_cast<std::uint8_t>(base));
  i.imm = off;
  return i;
}

Instruction make_store(int data, int base, std::int64_t off = 0) {
  Instruction i;
  i.op = Opcode::SD;
  i.src2 = ir(static_cast<std::uint8_t>(data));
  i.src1 = ir(static_cast<std::uint8_t>(base));
  i.imm = off;
  return i;
}

// Fixture owning instructions (DynOp keeps pointers into this storage).
class CoreTest : public ::testing::Test {
 protected:
  CoreConfig small_config() {
    CoreConfig cfg;
    cfg.name = "test";
    cfg.window = 16;
    cfg.issue_width = 4;
    cfg.commit_width = 4;
    cfg.dispatch_width = 4;
    cfg.input_queue = 64;
    cfg.int_alu = 4;
    cfg.fp_alu = 1;
    cfg.fp_muldiv = 1;
    cfg.mem_ports = 2;
    return cfg;
  }

  DynOp op_for(const Instruction& inst, std::uint64_t addr = 0) {
    held_.push_back(std::make_unique<Instruction>(inst));
    DynOp op;
    op.trace_pos = static_cast<std::int64_t>(held_.size()) - 1;
    op.static_idx = static_cast<std::int32_t>(held_.size()) - 1;
    op.inst = held_.back().get();
    op.addr = addr;
    return op;
  }

  // Runs until drained; returns total cycles.
  std::uint64_t drain(OoOCore& core, std::uint64_t limit = 10000) {
    std::uint64_t now = 0;
    while (!core.drained()) {
      core.tick(now);
      if (++now > limit) ADD_FAILURE() << "core did not drain";
      if (now > limit) break;
    }
    return now;
  }

  std::vector<std::unique_ptr<Instruction>> held_;
  mem::MemorySystem memsys_;
};

TEST_F(CoreTest, IndependentAddsBoundByIssueWidth) {
  auto cfg = small_config();
  OoOCore core(cfg, &memsys_, {});
  for (int i = 0; i < 16; ++i)
    ASSERT_TRUE(core.enqueue(op_for(make_add(1 + (i % 8), 0, 0))));
  const auto cycles = drain(core);
  // 16 single-cycle ops at width 4: roughly 4 issue groups + pipe depth.
  EXPECT_LE(cycles, 10u);
  EXPECT_GE(cycles, 4u);
  EXPECT_EQ(core.stats().committed, 16u);
}

TEST_F(CoreTest, DependentChainSerializes) {
  auto cfg = small_config();
  OoOCore core(cfg, &memsys_, {});
  for (int i = 0; i < 16; ++i)
    ASSERT_TRUE(core.enqueue(op_for(make_add(1, 1, 1))));
  const auto cycles = drain(core);
  EXPECT_GE(cycles, 16u);  // one per cycle at best
}

TEST_F(CoreTest, ColdLoadPaysFullHierarchyLatency) {
  auto cfg = small_config();
  OoOCore core(cfg, &memsys_, {});
  ASSERT_TRUE(core.enqueue(op_for(make_load(1, 0), /*addr=*/0x1000)));
  const auto cycles = drain(core);
  EXPECT_GE(cycles, 133u);  // 1 + 12 + 120
  EXPECT_LE(cycles, 140u);
}

TEST_F(CoreTest, SecondLoadToSameBlockHits) {
  auto cfg = small_config();
  OoOCore core(cfg, &memsys_, {});
  ASSERT_TRUE(core.enqueue(op_for(make_load(1, 0), 0x1000)));
  ASSERT_TRUE(core.enqueue(op_for(make_load(2, 1), 0x1008)));
  // Dependent on first load, but same cache block: total stays ~2x miss?
  // No: the second is a hit, so total is ~miss + hit.
  const auto cycles = drain(core);
  EXPECT_LE(cycles, 150u);
  EXPECT_EQ(memsys_.l1().stats().read_misses, 1u);
}

TEST_F(CoreTest, LoadForwardsFromCompletedInWindowStore) {
  auto cfg = small_config();
  OoOCore core(cfg, &memsys_, {});
  // An unrelated divide at the head keeps commit blocked, so the store is
  // still in the window (completed) when the load becomes issueable: the
  // load must forward from it without touching the cache.
  Instruction div;
  div.op = Opcode::DIV;
  div.dst = ir(9);
  div.src1 = ir(1);
  div.src2 = ir(2);
  ASSERT_TRUE(core.enqueue(op_for(div)));
  ASSERT_TRUE(core.enqueue(op_for(make_store(3, 0), 0x2000)));
  ASSERT_TRUE(core.enqueue(op_for(make_load(4, 0), 0x2000)));
  drain(core);
  EXPECT_EQ(core.stats().forwarded_loads, 1u);
  // The load never touched the cache; only the store did.
  EXPECT_EQ(memsys_.l1().stats().reads, 0u);
  EXPECT_EQ(memsys_.l1().stats().writes, 1u);
}

TEST_F(CoreTest, LoadWaitsForStoreDataThenReadsCacheAfterCommit) {
  auto cfg = small_config();
  OoOCore core(cfg, &memsys_, {});
  // Store data comes from a slow divide; by the time the load can issue
  // the store has committed, so the load reads the (just-written) cache
  // line: an L1 hit, never an early/stale issue.
  Instruction div;
  div.op = Opcode::DIV;
  div.dst = ir(3);
  div.src1 = ir(1);
  div.src2 = ir(2);
  ASSERT_TRUE(core.enqueue(op_for(div)));
  ASSERT_TRUE(core.enqueue(op_for(make_store(3, 0), 0x2000)));
  ASSERT_TRUE(core.enqueue(op_for(make_load(4, 0), 0x2000)));
  const auto cycles = drain(core);
  EXPECT_GE(cycles, 20u);  // the divide gates the store's data
  EXPECT_EQ(core.stats().forwarded_loads + memsys_.l1().stats().reads, 1u);
}

TEST_F(CoreTest, IndependentLoadsOverlapMisses) {
  auto cfg = small_config();
  OoOCore core(cfg, &memsys_, {});
  // Four loads to distinct cold blocks: with 2 ports and non-blocking
  // misses they overlap, so total should be far below 4 serial misses.
  for (int i = 0; i < 4; ++i)
    ASSERT_TRUE(core.enqueue(
        op_for(make_load(1 + i, 0), 0x4000 + 0x1000 * i)));
  const auto cycles = drain(core);
  EXPECT_LT(cycles, 2 * 133u);
}

TEST_F(CoreTest, QueuePopWaitsForPush) {
  TimedFifo ldq("LDQ", 8);
  auto cfg = small_config();
  OoOCore core(cfg, &memsys_, {&ldq, nullptr, nullptr});
  Instruction pop;
  pop.op = Opcode::POPLDQ;
  pop.dst = ir(5);
  ASSERT_TRUE(core.enqueue(op_for(pop)));

  std::uint64_t now = 0;
  for (; now < 50; ++now) core.tick(now);
  EXPECT_FALSE(core.drained());  // still waiting on the empty LDQ
  EXPECT_GT(core.stats().head_pop_empty_stalls, 0u);

  ldq.push({/*ready=*/60, /*producer_pos=*/0, /*eod=*/false});
  for (; now < 100 && !core.drained(); ++now) core.tick(now);
  EXPECT_TRUE(core.drained());
  EXPECT_EQ(ldq.stats().pops, 1u);
}

TEST_F(CoreTest, PopsDrainInFifoOrder) {
  TimedFifo ldq("LDQ", 8);
  auto cfg = small_config();
  OoOCore core(cfg, &memsys_, {&ldq, nullptr, nullptr});
  for (int i = 0; i < 3; ++i) {
    Instruction pop;
    pop.op = Opcode::POPLDQ;
    pop.dst = ir(static_cast<std::uint8_t>(5 + i));
    ASSERT_TRUE(core.enqueue(op_for(pop)));
  }
  for (int i = 0; i < 3; ++i)
    ldq.push({/*ready=*/0, /*producer_pos=*/i, /*eod=*/false});
  drain(core);
  EXPECT_EQ(ldq.stats().pops, 3u);
  EXPECT_TRUE(ldq.empty());
}

TEST_F(CoreTest, PushBlocksCommitWhenQueueFull) {
  TimedFifo ldq("LDQ", 1);
  auto cfg = small_config();
  OoOCore core(cfg, &memsys_, {&ldq, nullptr, nullptr});
  Instruction push;
  push.op = Opcode::PUSHLDQ;
  push.src1 = ir(1);
  ASSERT_TRUE(core.enqueue(op_for(push)));
  ASSERT_TRUE(core.enqueue(op_for(push)));  // second push: queue now full
  std::uint64_t now = 0;
  for (; now < 50; ++now) core.tick(now);
  EXPECT_FALSE(core.drained());
  EXPECT_GT(core.stats().queue_full_commit_stalls, 0u);
  ldq.pop();  // consumer frees a slot
  for (; now < 100 && !core.drained(); ++now) core.tick(now);
  EXPECT_TRUE(core.drained());
}

TEST_F(CoreTest, AnnotationPushLandsInQueueAtCommit) {
  TimedFifo ldq("LDQ", 8);
  auto cfg = small_config();
  OoOCore core(cfg, &memsys_, {&ldq, nullptr, nullptr});
  Instruction add = make_add(1, 0, 0);
  add.ann.push_ldq = true;
  ASSERT_TRUE(core.enqueue(op_for(add)));
  drain(core);
  EXPECT_EQ(ldq.stats().pushes, 1u);
}

TEST_F(CoreTest, WindowFullStallsDispatch) {
  auto cfg = small_config();
  cfg.window = 4;
  OoOCore core(cfg, &memsys_, {});
  // A long divide at the head keeps the window occupied.
  Instruction div;
  div.op = Opcode::DIV;
  div.dst = ir(1);
  div.src1 = ir(1);
  div.src2 = ir(2);
  ASSERT_TRUE(core.enqueue(op_for(div)));
  for (int i = 0; i < 8; ++i) ASSERT_TRUE(core.enqueue(op_for(make_add(2, 0, 0))));
  drain(core);
  EXPECT_GT(core.stats().window_full_stalls, 0u);
}

TEST_F(CoreTest, PrefetchOnlyCoreRejectsStores) {
  auto cfg = small_config();
  cfg.prefetch_only = true;
  OoOCore core(cfg, &memsys_, {});
  ASSERT_TRUE(core.enqueue(op_for(make_store(1, 0), 0x100)));
  EXPECT_THROW(drain(core), std::logic_error);
}

TEST_F(CoreTest, NoLsuCoreRejectsMemoryOps) {
  auto cfg = small_config();
  cfg.has_lsu = false;
  OoOCore core(cfg, &memsys_, {});
  ASSERT_TRUE(core.enqueue(op_for(make_load(1, 0), 0x100)));
  EXPECT_THROW(drain(core), std::logic_error);
}

TEST_F(CoreTest, PrefetchOnlyLoadsCountAsCachePrefetches) {
  auto cfg = small_config();
  cfg.prefetch_only = true;
  OoOCore core(cfg, &memsys_, {});
  ASSERT_TRUE(core.enqueue(op_for(make_load(1, 0), 0x5000)));
  drain(core);
  EXPECT_EQ(memsys_.l1().stats().prefetches, 1u);
  EXPECT_EQ(memsys_.l1().stats().demand_accesses(), 0u);
}

TEST_F(CoreTest, MispredictedBranchReportsResolution) {
  auto cfg = small_config();
  OoOCore core(cfg, &memsys_, {});
  Instruction br;
  br.op = Opcode::BNE;
  br.src1 = ir(1);
  br.src2 = ir(2);
  br.target = 0;
  auto op = op_for(br);
  op.mispredicted = true;
  ASSERT_TRUE(core.enqueue(op));
  drain(core);
  const auto resolved = core.take_resolved_branches();
  ASSERT_EQ(resolved.size(), 1u);
  EXPECT_EQ(resolved[0].trace_pos, op.trace_pos);
}

TEST_F(CoreTest, LsqCapBoundsMemOpsInWindow) {
  auto cfg = small_config();
  cfg.lsq = 2;
  OoOCore core(cfg, &memsys_, {});
  for (int i = 0; i < 6; ++i)
    ASSERT_TRUE(core.enqueue(op_for(make_load(1, 0), 0x6000 + 0x40 * i)));
  // All six eventually complete even though only two fit at a time.
  drain(core);
  EXPECT_EQ(core.stats().loads, 6u);
}

}  // namespace
}  // namespace hidisc::uarch
