// Integration tests for the four machine configurations: termination,
// stat plausibility, queue discipline, latency effects, decoupling slip,
// and CMP prefetching.
#include <gtest/gtest.h>

#include "compiler/compile.hpp"
#include "isa/assembler.hpp"
#include "machine/machine.hpp"
#include "sim/functional.hpp"

namespace hidisc::machine {
namespace {

using compiler::Compilation;
using isa::assemble;

const char* kStrided = R"(
.data
arr: .space 524288
.text
_start:
  la   r4, arr
  li   r5, 4096
loop:
  ld   r6, 0(r4)
  add  r7, r7, r6
  addi r4, r4, 128
  addi r5, r5, -1
  bne  r5, r0, loop
  halt
)";

// FP producer-consumer loop (decoupling-friendly: loads feed FP compute).
const char* kDaxpy = R"(
.data
xv: .space 65536
yv: .space 65536
aa: .double 3.25
.text
_start:
  la   r4, xv
  la   r5, yv
  fld  f2, aa
  li   r6, 8192
loop:
  fld  f4, 0(r4)
  fld  f6, 0(r5)
  fmul f8, f4, f2
  fadd f10, f8, f6
  fsd  f10, 0(r5)
  addi r4, r4, 8
  addi r5, r5, 8
  addi r6, r6, -1
  bne  r6, r0, loop
  halt
)";

struct Prepared {
  Compilation comp;
  sim::Trace orig_trace;
  sim::Trace sep_trace;
};

Prepared prepare(const char* src, compiler::CompileOptions copt = {}) {
  Prepared p{compiler::compile(assemble(src), copt), {}, {}};
  sim::Functional fo(p.comp.original);
  p.orig_trace = fo.run_trace();
  sim::Functional fs(p.comp.separated);
  p.sep_trace = fs.run_trace();
  return p;
}

Result run_preset(const Prepared& p, Preset preset,
                  const MachineConfig& cfg = {}) {
  const bool sep = uses_separated_binary(preset);
  return run_machine(sep ? p.comp.separated : p.comp.original,
                     sep ? p.sep_trace : p.orig_trace, preset, cfg);
}

TEST(Machine, SuperscalarCommitsWholeTrace) {
  const auto p = prepare(kStrided);
  const auto r = run_preset(p, Preset::Superscalar);
  EXPECT_EQ(r.instructions, p.orig_trace.size());
  EXPECT_TRUE(r.has_main);
  EXPECT_FALSE(r.has_cp);
  EXPECT_GT(r.ipc, 0.05);
  EXPECT_LT(r.ipc, 8.0);
}

TEST(Machine, CpApCommitsWholeSeparatedTrace) {
  const auto p = prepare(kDaxpy);
  const auto r = run_preset(p, Preset::CPAP);
  EXPECT_EQ(r.instructions, p.sep_trace.size());
  EXPECT_TRUE(r.has_cp);
  EXPECT_TRUE(r.has_ap);
  EXPECT_FALSE(r.has_cmp);
  // Queue discipline: every push was popped, queues ended empty.
  EXPECT_EQ(r.ldq.pushes, r.ldq.pops);
  EXPECT_EQ(r.sdq.pushes, r.sdq.pops);
  EXPECT_GT(r.ldq.pushes, 0u);
}

TEST(Machine, HidiscRunsAllThreeProcessors) {
  const auto p = prepare(kStrided);
  const auto r = run_preset(p, Preset::HiDISC);
  EXPECT_TRUE(r.has_cp);
  EXPECT_TRUE(r.has_ap);
  EXPECT_TRUE(r.has_cmp);
  EXPECT_GT(r.cmas_forks, 0u);
  EXPECT_GT(r.cmas_uops, 0u);
  EXPECT_GT(r.cmp.committed_all, 0u);
  EXPECT_EQ(r.cmp.committed, 0u);  // CMP work is never architectural
}

TEST(Machine, CmpPrefetchingReducesApMissesAndCycles) {
  const auto p = prepare(kStrided);
  const auto base = run_preset(p, Preset::Superscalar);
  const auto hidisc = run_preset(p, Preset::HiDISC);
  const auto cpcmp = run_preset(p, Preset::CPCMP);
  // The strided scan misses on every iteration at baseline; the CMP
  // prefetches ahead, so line-absent misses (demand misses minus MSHR-
  // merged delayed hits) and cycles must drop.
  EXPECT_LT(hidisc.l1.demand_misses() - hidisc.l1.late_fill_hits,
            base.l1.demand_misses());
  EXPECT_LT(hidisc.cycles, base.cycles);
  EXPECT_LT(cpcmp.cycles, base.cycles);
  EXPECT_GT(hidisc.l1.useful_prefetches + hidisc.l1.late_fill_hits, 100u);
}

TEST(Machine, LongerMemoryLatencyCostsBaselineMore) {
  const auto p = prepare(kStrided);
  MachineConfig short_lat;
  short_lat.mem = mem::MemConfig::with_latencies(4, 40);
  MachineConfig long_lat;
  long_lat.mem = mem::MemConfig::with_latencies(16, 160);

  const auto base_s = run_preset(p, Preset::Superscalar, short_lat);
  const auto base_l = run_preset(p, Preset::Superscalar, long_lat);
  const auto hd_s = run_preset(p, Preset::HiDISC, short_lat);
  const auto hd_l = run_preset(p, Preset::HiDISC, long_lat);

  const double base_degradation =
      static_cast<double>(base_l.cycles) / base_s.cycles;
  const double hd_degradation =
      static_cast<double>(hd_l.cycles) / hd_s.cycles;
  EXPECT_GT(base_degradation, 1.05);
  EXPECT_LT(hd_degradation, base_degradation);
}

TEST(Machine, BranchPredictorSeesEveryLoopBranch) {
  const auto p = prepare(kStrided);
  const auto r = run_preset(p, Preset::Superscalar);
  EXPECT_GE(r.branch.lookups, 4096u);
  EXPECT_LT(r.branch.mispredict_rate(), 0.05);
}

TEST(Machine, MispredictsStallFetch) {
  // Data-dependent alternating branch: near-50% mispredicts.
  const char* src = R"(
.text
_start:
  li r5, 3000
  li r8, 0
loop:
  andi r6, r5, 1
  beq  r6, r0, even
  addi r8, r8, 3
  j    next
even:
  addi r8, r8, 5
next:
  addi r5, r5, -1
  bne  r5, r0, loop
  halt
)";
  const auto p = prepare(src);
  const auto r = run_preset(p, Preset::Superscalar);
  EXPECT_GT(r.branch.mispredicts, 1000u);
  EXPECT_GT(r.fetch_stall_branch_cycles, 1000u);
}

TEST(Machine, ApStallsOnSdqAreLodEvents) {
  // Store data produced by a long FP chain: the AP waits on the SDQ.
  const auto p = prepare(kDaxpy);
  const auto r = run_preset(p, Preset::CPAP);
  EXPECT_GT(r.ap.lod_stalls, 0u);
}

TEST(Machine, WatchdogAbortsStuckConfiguration) {
  // A hand-broken binary: a POPLDQ with no matching push deadlocks the CP.
  auto prog = assemble("popldq r1\nhalt\n");
  prog.code[0].ann.stream = isa::Stream::Compute;
  prog.code[1].ann.stream = isa::Stream::Access;
  // Build a fake trace manually (the functional sim would throw).
  sim::Trace trace;
  trace.push_back({0, 1, 0, 0});
  trace.push_back({1, 1, 0, 0});
  MachineConfig cfg;
  cfg.watchdog_cycles = 2000;
  Machine m(prog, trace, Preset::CPAP, cfg);
  EXPECT_THROW((void)m.run(), std::runtime_error);
}

TEST(Machine, ICacheModelChargesColdFetchOnly) {
  const auto p = prepare(kStrided);
  MachineConfig off;
  MachineConfig on;
  on.model_icache = true;
  const auto r_off = run_preset(p, Preset::Superscalar, off);
  const auto r_on = run_preset(p, Preset::Superscalar, on);
  // Loop-resident code: only cold-start fetch misses, so the cost is a
  // handful of fills, not a per-iteration tax.
  EXPECT_GE(r_on.cycles, r_off.cycles);
  EXPECT_LT(r_on.cycles, r_off.cycles + 2000);
}

TEST(Machine, GsharePredictorIsSelectable) {
  // A history-friendly branch pattern: period-2 taken/not-taken.
  const char* src = R"(
.text
_start:
  li r5, 4000
loop:
  andi r6, r5, 1
  beq  r6, r0, even
  addi r8, r8, 3
  j    next
even:
  addi r8, r8, 5
next:
  addi r5, r5, -1
  bne  r5, r0, loop
  halt
)";
  const auto p = prepare(src);
  MachineConfig bimodal;
  MachineConfig gshare;
  gshare.predictor_kind = uarch::PredictorKind::GShare;
  const auto rb = run_preset(p, Preset::Superscalar, bimodal);
  const auto rg = run_preset(p, Preset::Superscalar, gshare);
  EXPECT_LT(rg.branch.mispredicts, rb.branch.mispredicts / 2);
  EXPECT_LT(rg.cycles, rb.cycles);
}

TEST(Machine, ConvenienceOverloadTracesInternally) {
  const auto prog = assemble("li r1, 5\nhalt\n");
  const auto r = run_machine(prog, Preset::Superscalar);
  EXPECT_EQ(r.instructions, 2u);
  EXPECT_GT(r.cycles, 0u);
}

TEST(Machine, CyclesScaleWithWork) {
  const auto small = run_machine(assemble(R"(
.text
_start:
  li r5, 100
loop: addi r5, r5, -1
  bne r5, r0, loop
  halt
)"), Preset::Superscalar);
  const auto big = run_machine(assemble(R"(
.text
_start:
  li r5, 10000
loop: addi r5, r5, -1
  bne r5, r0, loop
  halt
)"), Preset::Superscalar);
  EXPECT_GT(big.cycles, 10 * small.cycles);
}

}  // namespace
}  // namespace hidisc::machine
