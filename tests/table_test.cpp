// Reporting-table tests (every bench binary renders through this).
#include <gtest/gtest.h>

#include "stats/table.hpp"

namespace hidisc::stats {
namespace {

TEST(Table, AlignsColumns) {
  Table t({"A", "Benchmark"});
  t.add_row({"x", "short"});
  t.add_row({"longer", "y"});
  const auto s = t.to_string();
  // Every line has equal length in an aligned table.
  std::size_t len = s.find('\n');
  for (std::size_t pos = 0; pos < s.size();) {
    const auto end = s.find('\n', pos);
    EXPECT_EQ(end - pos, len) << "ragged line at offset " << pos;
    pos = end + 1;
  }
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.add_row({"1", "2"}).add_row({"3", "4"});
  EXPECT_EQ(t.to_csv(), "a,b\n1,2\n3,4\n");
}

TEST(Table, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), std::invalid_argument);
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(Table::num(1.2345, 2), "1.23");
  EXPECT_EQ(Table::num(-0.5, 1), "-0.5");
  EXPECT_EQ(Table::pct(0.119), "+11.9%");
  EXPECT_EQ(Table::pct(-0.013), "-1.3%");
}

TEST(Table, ContentsAppearInOutput) {
  Table t({"name", "value"});
  t.add_row({"cycles", "12345"});
  const auto s = t.to_string();
  EXPECT_NE(s.find("cycles"), std::string::npos);
  EXPECT_NE(s.find("12345"), std::string::npos);
}

}  // namespace
}  // namespace hidisc::stats
