// Hardware-prefetcher family tests (mem/prefetcher.hpp).
//
// Three layers:
//   1. Golden reference models — brute-force reimplementations of the
//      next-line / stride / IP-stride / SMS predictors, replayed against
//      the real prefetchers on seeded random access streams (seeds via
//      fuzz::derive_seed, so any failure names its reproducing stream).
//   2. Event-skip soundness — every in-flight fill a prefetcher creates
//      must be visible to MemorySystem::next_fill_complete, and
//      debug_check_invariants must agree when the frontier is recomputed
//      from the cache lines themselves.
//   3. Machine-level bit-identity — EventSkip == Lockstep Results with
//      every scheme enabled, plus accurate/late/useless accounting.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <random>
#include <string>
#include <vector>

#include "compiler/compile.hpp"
#include "fuzz/campaign.hpp"
#include "machine/machine.hpp"
#include "mem/memory_system.hpp"
#include "mem/prefetcher.hpp"
#include "sim/functional.hpp"
#include "workloads/common.hpp"

namespace hidisc {
namespace {

using mem::PrefetchAccess;
using mem::PrefetchConfig;
using mem::PrefetchKind;

// ---- spec grammar ----------------------------------------------------------

TEST(PrefetchSpec, RoundTripsCanonically) {
  for (const char* s :
       {"none", "nextline", "stride", "ipstride", "sms", "runahead",
        "ipstride:deg4", "nextline:deg1:miss", "sms:tbl512:region32",
        "stride:deg8:dist2:conf1", "runahead:deg4:dist3"}) {
    const PrefetchConfig cfg = mem::parse_prefetch_spec(s);
    EXPECT_EQ(mem::prefetch_spec(cfg), s) << "spec not canonical";
    // Re-parsing the canonical form is a fixed point.
    const PrefetchConfig again = mem::parse_prefetch_spec(mem::prefetch_spec(cfg));
    EXPECT_EQ(mem::prefetch_spec(again), s);
  }
}

TEST(PrefetchSpec, RejectsUnknownAndMalformed) {
  EXPECT_THROW((void)mem::parse_prefetch_spec("markov"), std::invalid_argument);
  EXPECT_THROW((void)mem::parse_prefetch_spec("nextline:bogus"),
               std::invalid_argument);
  EXPECT_THROW((void)mem::parse_prefetch_spec("nextline:deg"),
               std::invalid_argument);
  EXPECT_THROW((void)mem::parse_prefetch_spec("nextline:deg0"),
               std::invalid_argument);
  EXPECT_THROW((void)mem::parse_prefetch_spec("sms:region48"),
               std::invalid_argument);  // not a power of two
  EXPECT_THROW((void)mem::parse_prefetch_spec("sms:region128"),
               std::invalid_argument);  // > 64 blocks
  EXPECT_THROW((void)mem::parse_prefetch_spec("ipstride:tbl100"),
               std::invalid_argument);
  EXPECT_THROW((void)mem::parse_prefetch_spec("stride:conf9"),
               std::invalid_argument);
  EXPECT_THROW((void)mem::parse_prefetch_spec(""), std::invalid_argument);
}

TEST(PrefetchSpec, NoneBuildsNoPrefetcher) {
  EXPECT_EQ(mem::make_prefetcher(PrefetchConfig{}, 32), nullptr);
  EXPECT_EQ(mem::parse_prefetch_spec("off").kind, PrefetchKind::None);
}

// ---- golden reference models ----------------------------------------------
//
// Each model is an independent brute-force restatement of the scheme's
// published behaviour.  They share only the splitmix64 finalizer with the
// implementation (the table-index hash is part of the scheme's definition;
// everything else is re-derived).

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

struct GoldenStrideState {
  std::uint64_t last_block = 0;
  std::int64_t stride = 0;
  int confidence = 0;
  bool seen = false;
};

// One training step of the classic stride predictor, written longhand.
void golden_stride_step(GoldenStrideState& st, std::uint64_t block,
                        const PrefetchConfig& cfg, std::uint64_t bs,
                        std::vector<std::uint64_t>& out) {
  if (!st.seen) {
    st = GoldenStrideState{block, 0, 0, true};
    return;
  }
  const std::int64_t delta = static_cast<std::int64_t>(block) -
                             static_cast<std::int64_t>(st.last_block);
  st.last_block = block;
  if (delta == 0) return;
  if (delta == st.stride) st.confidence = std::min(st.confidence + 1, 8);
  else {
    st.stride = delta;
    st.confidence = 1;
  }
  if (st.confidence < cfg.min_confidence) return;
  for (int i = 0; i < cfg.degree; ++i) {
    const std::int64_t target =
        static_cast<std::int64_t>(block) +
        st.stride * static_cast<std::int64_t>(cfg.distance + i);
    if (target < 0) break;
    out.push_back(static_cast<std::uint64_t>(target) * bs);
  }
}

class GoldenModel {
 public:
  virtual ~GoldenModel() = default;
  virtual void observe(const PrefetchAccess& ev,
                       std::vector<std::uint64_t>& out) = 0;
};

class GoldenNextLine final : public GoldenModel {
 public:
  GoldenNextLine(const PrefetchConfig& cfg, std::uint64_t bs)
      : cfg_(cfg), bs_(bs) {}
  void observe(const PrefetchAccess& ev,
               std::vector<std::uint64_t>& out) override {
    if (ev.l1_hit && !cfg_.train_on_hit) return;
    for (int i = 0; i < cfg_.degree; ++i)
      out.push_back((ev.block + static_cast<std::uint64_t>(cfg_.distance) +
                     static_cast<std::uint64_t>(i)) *
                    bs_);
  }

 private:
  PrefetchConfig cfg_;
  std::uint64_t bs_;
};

class GoldenStride final : public GoldenModel {
 public:
  GoldenStride(const PrefetchConfig& cfg, std::uint64_t bs)
      : cfg_(cfg), bs_(bs) {}
  void observe(const PrefetchAccess& ev,
               std::vector<std::uint64_t>& out) override {
    if (ev.l1_hit && !cfg_.train_on_hit) return;
    golden_stride_step(st_, ev.block, cfg_, bs_, out);
  }

 private:
  PrefetchConfig cfg_;
  std::uint64_t bs_;
  GoldenStrideState st_;
};

// Direct-mapped per-PC table, modelled as a map from slot index: a
// colliding PC evicts the incumbent and restarts training.
class GoldenIpStride final : public GoldenModel {
 public:
  GoldenIpStride(const PrefetchConfig& cfg, std::uint64_t bs)
      : cfg_(cfg), bs_(bs) {}
  void observe(const PrefetchAccess& ev,
               std::vector<std::uint64_t>& out) override {
    if (ev.pc < 0) return;
    if (ev.l1_hit && !cfg_.train_on_hit) return;
    const auto pc = static_cast<std::uint64_t>(ev.pc);
    const std::uint64_t slot =
        mix64(pc) & (static_cast<std::uint64_t>(cfg_.table_entries) - 1);
    auto& [owner, st] = slots_[slot];
    if (st.seen && owner != pc) st = GoldenStrideState{};
    owner = pc;
    golden_stride_step(st, ev.block, cfg_, bs_, out);
  }

 private:
  PrefetchConfig cfg_;
  std::uint64_t bs_;
  std::map<std::uint64_t, std::pair<std::uint64_t, GoldenStrideState>> slots_;
};

// SMS: accumulate per-region footprints in a 64-slot direct-mapped table;
// commit to the PHT on slot recycle; replay the learned footprint (lowest
// offsets first, trigger block excluded, at most `degree`) on the first
// touch of a new generation.
class GoldenSms final : public GoldenModel {
 public:
  GoldenSms(const PrefetchConfig& cfg, std::uint64_t bs)
      : cfg_(cfg), bs_(bs) {}
  void observe(const PrefetchAccess& ev,
               std::vector<std::uint64_t>& out) override {
    if (ev.l1_hit && !cfg_.train_on_hit) return;
    const auto region_blocks =
        static_cast<std::uint64_t>(cfg_.sms_region_blocks);
    const std::uint64_t region = ev.block / region_blocks;
    const int offset = static_cast<int>(ev.block % region_blocks);
    const std::uint64_t slot = mix64(region) & 63;
    auto it = acc_.find(slot);
    if (it != acc_.end() && it->second.region == region) {
      it->second.pattern |= std::uint64_t{1} << offset;
      return;
    }
    if (it != acc_.end()) {
      const std::uint64_t pslot =
          mix64(it->second.trigger) &
          (static_cast<std::uint64_t>(cfg_.table_entries) - 1);
      pht_[pslot] = {it->second.trigger, it->second.pattern};
    }
    const std::uint64_t trigger =
        (static_cast<std::uint64_t>(
             static_cast<std::uint32_t>(ev.pc < 0 ? 0 : ev.pc))
         << 6) ^
        static_cast<std::uint64_t>(offset);
    acc_[slot] = {region, std::uint64_t{1} << offset, trigger};
    const std::uint64_t pslot =
        mix64(trigger) & (static_cast<std::uint64_t>(cfg_.table_entries) - 1);
    const auto pit = pht_.find(pslot);
    if (pit == pht_.end() || pit->second.first != trigger) return;
    int emitted = 0;
    for (int b = 0;
         b < static_cast<int>(region_blocks) && emitted < cfg_.degree; ++b) {
      if (b == offset || (pit->second.second & (std::uint64_t{1} << b)) == 0)
        continue;
      out.push_back((region * region_blocks + static_cast<std::uint64_t>(b)) *
                    bs_);
      ++emitted;
    }
  }

 private:
  struct Acc {
    std::uint64_t region = 0;
    std::uint64_t pattern = 0;
    std::uint64_t trigger = 0;
  };
  PrefetchConfig cfg_;
  std::uint64_t bs_;
  std::map<std::uint64_t, Acc> acc_;
  std::map<std::uint64_t, std::pair<std::uint64_t, std::uint64_t>> pht_;
};

// A seeded access stream with enough structure to exercise every scheme:
// a handful of PC-attributed strided walkers plus uniform noise.
std::vector<PrefetchAccess> random_stream(std::uint64_t seed, int length,
                                          std::uint64_t block_bytes) {
  std::mt19937_64 rng(seed);
  struct Walker {
    std::uint64_t block;
    std::int64_t stride;
    std::int32_t pc;
  };
  std::vector<Walker> walkers;
  for (int i = 0; i < 4; ++i)
    walkers.push_back({rng() % 10000 + 1000,
                       static_cast<std::int64_t>(rng() % 7) - 3,
                       static_cast<std::int32_t>(rng() % 48)});
  std::vector<PrefetchAccess> stream;
  std::uint64_t now = 0;
  for (int i = 0; i < length; ++i) {
    now += rng() % 9 + 1;
    PrefetchAccess ev;
    ev.now = now;
    ev.l1_hit = (rng() & 3) != 0;  // 75% hits, like a real stream
    ev.write = (rng() & 7) == 0;
    if ((rng() & 7) < 6) {
      auto& w = walkers[rng() % walkers.size()];
      const std::int64_t next =
          static_cast<std::int64_t>(w.block) + w.stride;
      w.block = next < 0 ? 1000 : static_cast<std::uint64_t>(next);
      ev.block = w.block;
      ev.pc = w.pc;
      if ((rng() & 31) == 0) w.stride = static_cast<std::int64_t>(rng() % 7) - 3;
    } else {
      ev.block = rng() % 65536;
      ev.pc = (rng() & 1) ? static_cast<std::int32_t>(rng() % 48) : -1;
    }
    ev.addr = ev.block * block_bytes + rng() % block_bytes;
    stream.push_back(ev);
  }
  return stream;
}

void replay_against_golden(const PrefetchConfig& cfg, GoldenModel& golden) {
  constexpr std::uint64_t kBlockBytes = 32;
  const auto pf = mem::make_prefetcher(cfg, kBlockBytes);
  ASSERT_NE(pf, nullptr);
  for (std::uint64_t run = 0; run < 8; ++run) {
    const std::uint64_t seed = fuzz::derive_seed(0x9f37, run);
    const auto stream = random_stream(seed, 2000, kBlockBytes);
    std::vector<std::uint64_t> got, want;
    for (std::size_t i = 0; i < stream.size(); ++i) {
      got.clear();
      want.clear();
      pf->observe(stream[i], got);
      golden.observe(stream[i], want);
      ASSERT_EQ(got, want)
          << mem::prefetch_spec(cfg) << ": divergence at event " << i
          << " (seed " << seed << ", block " << stream[i].block << ", pc "
          << stream[i].pc << ")";
    }
    pf->reset();
  }
}

TEST(PrefetchGolden, NextLineMatchesBruteForce) {
  for (const char* s : {"nextline", "nextline:deg4:dist2", "nextline:miss"}) {
    const auto cfg = mem::parse_prefetch_spec(s);
    GoldenNextLine golden(cfg, 32);
    // reset() between runs is a no-op for a stateless scheme, so one
    // golden instance serves all replays.
    replay_against_golden(cfg, golden);
  }
}

TEST(PrefetchGolden, StrideMatchesBruteForce) {
  for (const char* s : {"stride", "stride:deg4:conf1", "stride:dist3:miss"}) {
    const auto cfg = mem::parse_prefetch_spec(s);
    const auto pf = mem::make_prefetcher(cfg, 32);
    for (std::uint64_t run = 0; run < 8; ++run) {
      GoldenStride golden(cfg, 32);  // fresh golden per replay
      const std::uint64_t seed = fuzz::derive_seed(0x57a1de, run);
      const auto stream = random_stream(seed, 2000, 32);
      std::vector<std::uint64_t> got, want;
      for (std::size_t i = 0; i < stream.size(); ++i) {
        got.clear();
        want.clear();
        pf->observe(stream[i], got);
        golden.observe(stream[i], want);
        ASSERT_EQ(got, want) << s << ": event " << i << " seed " << seed;
      }
      pf->reset();
    }
  }
}

TEST(PrefetchGolden, IpStrideMatchesBruteForce) {
  for (const char* s : {"ipstride", "ipstride:deg4", "ipstride:tbl16:conf1"}) {
    const auto cfg = mem::parse_prefetch_spec(s);
    const auto pf = mem::make_prefetcher(cfg, 32);
    for (std::uint64_t run = 0; run < 8; ++run) {
      GoldenIpStride golden(cfg, 32);
      const std::uint64_t seed = fuzz::derive_seed(0x1b57a1de, run);
      const auto stream = random_stream(seed, 2000, 32);
      std::vector<std::uint64_t> got, want;
      for (std::size_t i = 0; i < stream.size(); ++i) {
        got.clear();
        want.clear();
        pf->observe(stream[i], got);
        golden.observe(stream[i], want);
        ASSERT_EQ(got, want) << s << ": event " << i << " seed " << seed;
      }
      pf->reset();
    }
  }
}

TEST(PrefetchGolden, SmsMatchesBruteForce) {
  for (const char* s : {"sms", "sms:region4:deg8", "sms:tbl16"}) {
    const auto cfg = mem::parse_prefetch_spec(s);
    const auto pf = mem::make_prefetcher(cfg, 32);
    for (std::uint64_t run = 0; run < 8; ++run) {
      GoldenSms golden(cfg, 32);
      const std::uint64_t seed = fuzz::derive_seed(0x5a5a, run);
      const auto stream = random_stream(seed, 2000, 32);
      std::vector<std::uint64_t> got, want;
      for (std::size_t i = 0; i < stream.size(); ++i) {
        got.clear();
        want.clear();
        pf->observe(stream[i], got);
        golden.observe(stream[i], want);
        ASSERT_EQ(got, want) << s << ": event " << i << " seed " << seed;
      }
      pf->reset();
    }
  }
}

TEST(PrefetchRunahead, ReplaysRecordedMissChain) {
  const auto cfg = mem::parse_prefetch_spec("runahead:deg2:dist2");
  const auto pf = mem::make_prefetcher(cfg, 32);
  std::vector<std::uint64_t> out;
  const auto miss = [&](std::uint64_t block) {
    PrefetchAccess ev;
    ev.block = block;
    ev.addr = block * 32;
    ev.l1_hit = false;
    out.clear();
    pf->observe(ev, out);
    return out;
  };
  // Teach the chain A -> B -> C (cold walk: nothing to predict yet).
  EXPECT_TRUE(miss(100).empty());
  EXPECT_TRUE(miss(200).empty());
  EXPECT_TRUE(miss(300).empty());
  // Re-missing A replays the chain: B from A's entry, then C from B's.
  const auto replay = miss(100);
  EXPECT_EQ(replay, (std::vector<std::uint64_t>{200 * 32, 300 * 32}));
  // Hits never train or trigger the miss-driven scheme.
  PrefetchAccess hit;
  hit.block = 200;
  hit.l1_hit = true;
  out.clear();
  pf->observe(hit, out);
  EXPECT_TRUE(out.empty());
}

// ---- event-skip soundness --------------------------------------------------

TEST(PrefetchEventSkip, FillFrontierCoversEveryInFlightFill) {
  for (const char* s :
       {"nextline", "stride:conf1", "ipstride", "sms:region4", "runahead"}) {
    mem::MemConfig mc;
    mc.prefetch = mem::parse_prefetch_spec(s);
    mem::MemorySystem ms(mc);
    ms.set_event_tracking(true);
    std::mt19937_64 rng(fuzz::derive_seed(0xf111, 0));
    std::uint64_t now = 0;
    for (int i = 0; i < 4000; ++i) {
      now += rng() % 40;
      const std::uint64_t addr = (rng() % 4096) * 32 + (rng() % 2) * 8;
      ms.access(addr, (rng() & 7) == 0 ? mem::AccessType::Write
                                       : mem::AccessType::Read,
                now, static_cast<std::int32_t>(rng() % 64));
      // The maintained frontier must never sit later than the earliest
      // in-flight line — otherwise the scheduler would skip that fill.
      std::vector<std::uint64_t> outstanding;
      ms.l1().debug_outstanding_readys(now, outstanding);
      ms.l1i().debug_outstanding_readys(now, outstanding);
      ms.l2().debug_outstanding_readys(now, outstanding);
      const std::uint64_t frontier = ms.next_fill_complete(now);
      if (!outstanding.empty()) {
        ASSERT_NE(frontier, mem::MemorySystem::kNoFill) << s << " @" << now;
        ASSERT_LE(frontier,
                  *std::min_element(outstanding.begin(), outstanding.end()))
            << s << " @" << now;
      }
      // And the brute-force recomputation must agree.
      ASSERT_NO_THROW(ms.debug_check_invariants(now)) << s << " @" << now;
    }
  }
}

TEST(PrefetchStats, TimelyAndLateAccounting) {
  mem::MemConfig mc;
  mc.prefetch = mem::parse_prefetch_spec("nextline:deg1");
  mem::MemorySystem ms(mc);
  // Miss on block 0 trains the prefetcher, which fills block 1.
  ms.access(0, mem::AccessType::Read, 0);
  auto s = ms.hw_prefetch_stats();
  EXPECT_EQ(s.trains, 1u);
  EXPECT_EQ(s.issued, 1u);
  EXPECT_EQ(s.installed, 1u);
  // Demand touch long after the fill landed: timely.
  ms.access(32, mem::AccessType::Read, 1000);
  s = ms.hw_prefetch_stats();
  EXPECT_EQ(s.used, 1u);
  EXPECT_EQ(s.late, 0u);
  EXPECT_EQ(s.timely(), 1u);
  // That hit trained again, prefetching block 2 at cycle 1000; touching
  // it immediately finds the fill still in flight: late.
  ms.access(64, mem::AccessType::Read, 1001);
  s = ms.hw_prefetch_stats();
  EXPECT_EQ(s.used, 2u);
  EXPECT_EQ(s.late, 1u);
  EXPECT_EQ(s.timely(), 1u);
  EXPECT_DOUBLE_EQ(s.lateness(), 0.5);
  // Every issued prefetch missed L1 by construction (the resident filter
  // ran first), so it allocated a line.
  EXPECT_EQ(s.issued, s.installed);
}

TEST(PrefetchStats, ResidentCandidatesAreFiltered) {
  mem::MemConfig mc;
  mc.prefetch = mem::parse_prefetch_spec("nextline:deg1");
  mem::MemorySystem ms(mc);
  ms.access(0, mem::AccessType::Read, 0);    // prefetches block 1
  ms.access(32, mem::AccessType::Read, 500);  // hit; candidate block 2
  ms.access(32, mem::AccessType::Read, 600);  // hit; block 2 now resident
  const auto s = ms.hw_prefetch_stats();
  EXPECT_EQ(s.trains, 3u);
  EXPECT_EQ(s.issued, 2u);
  EXPECT_EQ(s.filtered, 1u);
}

// ---- machine-level bit-identity -------------------------------------------

struct Prepared {
  compiler::Compilation comp;
  sim::Trace orig_trace;
  sim::Trace sep_trace;
};

Prepared prepare(const workloads::BuiltWorkload& w) {
  Prepared p{compiler::compile(w.program), {}, {}};
  p.orig_trace = sim::Functional(p.comp.original).run_trace();
  p.sep_trace = sim::Functional(p.comp.separated).run_trace();
  return p;
}

machine::Result run_with(const Prepared& p, machine::Preset preset,
                         machine::SchedulerKind k, machine::MachineConfig cfg) {
  cfg.scheduler = k;
  const bool sep = machine::uses_separated_binary(preset);
  machine::Machine m(sep ? p.comp.separated : p.comp.original,
                     sep ? p.sep_trace : p.orig_trace, preset, cfg);
  return m.run();
}

TEST(PrefetchScheduler, EventSkipMatchesLockstepWithEveryScheme) {
  const auto w = workloads::make_neighborhood(workloads::Scale::Test);
  const Prepared p = prepare(w);
  for (const char* s :
       {"nextline", "stride", "ipstride:deg4", "sms", "runahead"}) {
    for (const auto preset :
         {machine::Preset::Superscalar, machine::Preset::CPAP}) {
      machine::MachineConfig cfg;
      cfg.mem.prefetch = mem::parse_prefetch_spec(s);
      const auto skip =
          run_with(p, preset, machine::SchedulerKind::EventSkip, cfg);
      const auto lock =
          run_with(p, preset, machine::SchedulerKind::Lockstep, cfg);
      EXPECT_TRUE(skip == lock)
          << s << "/" << machine::preset_name(preset) << ": event-skip {"
          << skip.cycles << " cy} vs lockstep {" << lock.cycles << " cy}";
      EXPECT_GT(skip.pf.trains, 0u) << s;
    }
  }
}

TEST(PrefetchScheduler, PrefetchingChangesTimingButNotArchitecture) {
  const auto w = workloads::make_neighborhood(workloads::Scale::Test);
  const Prepared p = prepare(w);
  machine::MachineConfig base;
  const auto plain = run_with(p, machine::Preset::Superscalar,
                              machine::SchedulerKind::EventSkip, base);
  machine::MachineConfig pf_cfg;
  pf_cfg.mem.prefetch = mem::parse_prefetch_spec("ipstride:deg2:dist4");
  const auto pf = run_with(p, machine::Preset::Superscalar,
                           machine::SchedulerKind::EventSkip, pf_cfg);
  // Same committed work, different timing; a working prefetcher on the
  // regular Neighborhood kernel must remove demand misses.
  EXPECT_EQ(pf.instructions, plain.instructions);
  EXPECT_GT(pf.pf.issued, 0u);
  EXPECT_LT(pf.l1.demand_misses(), plain.l1.demand_misses());
  EXPECT_LT(pf.cycles, plain.cycles);
  EXPECT_GT(pf.pf_coverage, 0.0);
  EXPECT_EQ(plain.pf.trains, 0u);  // no prefetcher, no accounting
}

}  // namespace
}  // namespace hidisc
