// Program Flow Graph construction tests.
#include <gtest/gtest.h>

#include "compiler/pfg.hpp"
#include "isa/assembler.hpp"

namespace hidisc::compiler {
namespace {

using isa::assemble;

TEST(Pfg, StraightLineIsOneBlock) {
  const auto p = assemble("add r1, r2, r3\nadd r4, r5, r6\nhalt\n");
  ProgramFlowGraph g(p);
  ASSERT_EQ(g.blocks().size(), 1u);
  EXPECT_EQ(g.blocks()[0].first, 0);
  EXPECT_EQ(g.blocks()[0].last, 2);
  EXPECT_TRUE(g.blocks()[0].succs.empty());
}

TEST(Pfg, LoopMakesBackEdge) {
  const auto p = assemble(
      "li r1, 10\n"             // 0  block A
      "loop: addi r1, r1, -1\n" // 1  block B
      "bne r1, r0, loop\n"      // 2  block B
      "halt\n");                // 3  block C
  ProgramFlowGraph g(p);
  ASSERT_EQ(g.blocks().size(), 3u);
  EXPECT_EQ(g.block_of(0), 0);
  EXPECT_EQ(g.block_of(1), 1);
  EXPECT_EQ(g.block_of(2), 1);
  EXPECT_EQ(g.block_of(3), 2);
  // B -> {B, C}; A -> {B}.
  EXPECT_EQ(g.blocks()[0].succs, (std::vector<std::int32_t>{1}));
  EXPECT_EQ(g.blocks()[1].succs, (std::vector<std::int32_t>{1, 2}));
  EXPECT_EQ(g.blocks()[1].preds, (std::vector<std::int32_t>{0, 1}));
}

TEST(Pfg, JumpHasSingleSuccessor) {
  const auto p = assemble(
      "j skip\n"
      "li r1, 1\n"
      "skip: halt\n");
  ProgramFlowGraph g(p);
  ASSERT_GE(g.blocks().size(), 3u);
  EXPECT_EQ(g.blocks()[0].succs, (std::vector<std::int32_t>{2}));
}

TEST(Pfg, DefUseExtraction) {
  const auto p = assemble(
      "add r1, r2, r3\n"
      "ld r4, 8(r5)\n"
      "sd r6, 0(r7)\n"
      "fadd f1, f2, f3\n"
      "beq r1, r4, 0\n"
      "halt\n");
  ProgramFlowGraph g(p);
  EXPECT_EQ(g.def_use(0).def, 1);
  EXPECT_EQ(g.def_use(0).use[0], 2);
  EXPECT_EQ(g.def_use(0).use[1], 3);
  EXPECT_EQ(g.def_use(1).def, 4);
  EXPECT_EQ(g.def_use(1).use[0], 5);
  EXPECT_EQ(g.def_use(2).def, -1);
  EXPECT_EQ(g.def_use(2).use[0], 7);
  EXPECT_EQ(g.def_use(2).use[1], 6);
  EXPECT_TRUE(g.def_use(2).use2_is_store_data);
  EXPECT_EQ(g.def_use(3).def, 33);   // f1 flat index
  EXPECT_EQ(g.def_use(3).use[0], 34);
  EXPECT_EQ(g.def_use(4).def, -1);
  EXPECT_FALSE(g.def_use(4).use2_is_store_data);
}

TEST(Pfg, R0NeverAppearsInDefUse) {
  const auto p = assemble("add r0, r0, r1\nhalt\n");
  ProgramFlowGraph g(p);
  EXPECT_EQ(g.def_use(0).def, -1);
  EXPECT_EQ(g.def_use(0).use[0], 1);  // only r1 counts
}

TEST(Pfg, EveryInstructionBelongsToExactlyOneBlock) {
  const auto p = assemble(
      "li r1, 3\n"
      "a: addi r1, r1, -1\n"
      "beq r1, r0, b\n"
      "j a\n"
      "b: li r2, 5\n"
      "halt\n");
  ProgramFlowGraph g(p);
  for (std::int32_t i = 0; i < static_cast<std::int32_t>(p.code.size());
       ++i) {
    const auto b = g.block_of(i);
    ASSERT_GE(b, 0);
    const auto& bb = g.blocks()[b];
    EXPECT_GE(i, bb.first);
    EXPECT_LE(i, bb.last);
  }
}

TEST(Pfg, RejectsEmptyProgram) {
  isa::Program p;
  EXPECT_THROW(ProgramFlowGraph{p}, std::invalid_argument);
}

}  // namespace
}  // namespace hidisc::compiler
