// Cache and memory-hierarchy tests: geometry checks, LRU replacement,
// write-back behaviour, prefetch semantics, in-flight fills, and the
// Table-1 latency structure.
#include <gtest/gtest.h>

#include "mem/cache.hpp"
#include "mem/memory_system.hpp"

namespace hidisc::mem {
namespace {

CacheConfig tiny_cache() {
  return CacheConfig{/*sets=*/2, /*block_bytes=*/16, /*assoc=*/2,
                     /*hit_latency=*/1, "tiny"};
}

TEST(Cache, RejectsBadGeometry) {
  EXPECT_THROW(Cache(CacheConfig{0, 16, 2, 1, "x"}), std::invalid_argument);
  EXPECT_THROW(Cache(CacheConfig{3, 16, 2, 1, "x"}), std::invalid_argument);
  EXPECT_THROW(Cache(CacheConfig{2, 24, 2, 1, "x"}), std::invalid_argument);
}

TEST(Cache, SizeBytes) {
  EXPECT_EQ(CacheConfig(256, 32, 4, 1, "L1").size_bytes(), 32 * 1024);
  EXPECT_EQ(CacheConfig(1024, 64, 4, 12, "L2").size_bytes(), 256 * 1024);
}

TEST(Cache, MissThenHit) {
  Cache c(tiny_cache());
  EXPECT_FALSE(c.access(0x100, AccessType::Read, 1, 10).hit);
  // After the fill completes (>= cycle 10) the block hits cleanly.
  EXPECT_TRUE(c.access(0x100, AccessType::Read, 20, 0).hit);
  EXPECT_TRUE(c.access(0x10f, AccessType::Read, 21, 0).hit);  // same block
  EXPECT_FALSE(c.access(0x110, AccessType::Read, 22, 0).hit); // next block
  EXPECT_EQ(c.stats().reads, 4u);
  EXPECT_EQ(c.stats().read_misses, 2u);
}

TEST(Cache, DelayedHitCountsAsMissInStats) {
  Cache c(tiny_cache());
  c.access(0x100, AccessType::Read, 1, /*fill_ready=*/100);
  // Demand access while the fill is in flight: architecturally a hit
  // (MSHR merge), statistically a miss — only timely prefetches remove
  // misses (paper Figure 9).
  const auto r = c.access(0x100, AccessType::Read, 50, 0);
  EXPECT_TRUE(r.hit);
  EXPECT_EQ(c.stats().read_misses, 2u);
  EXPECT_EQ(c.stats().late_fill_hits, 1u);
}

TEST(Cache, LruEvictsOldest) {
  Cache c(tiny_cache());  // 2 sets x 2 ways; set = block index & 1
  // Three blocks mapping to set 0: block indices 0, 2, 4 -> addrs 0, 32, 64.
  c.access(0, AccessType::Read, 1, 0);
  c.access(32, AccessType::Read, 2, 0);
  c.access(0, AccessType::Read, 3, 0);   // touch 0: 32 becomes LRU
  c.access(64, AccessType::Read, 4, 0);  // evicts 32
  EXPECT_TRUE(c.contains(0));
  EXPECT_FALSE(c.contains(32));
  EXPECT_TRUE(c.contains(64));
  EXPECT_EQ(c.stats().evictions, 1u);
}

TEST(Cache, WriteMakesDirtyAndEvictionReportsWriteback) {
  Cache c(tiny_cache());
  c.access(0, AccessType::Write, 1, 0);
  c.access(32, AccessType::Read, 2, 0);
  const auto r = c.access(64, AccessType::Read, 3, 0);  // evicts dirty 0
  EXPECT_TRUE(r.evicted_dirty);
  EXPECT_EQ(r.evicted_addr, 0u);
  EXPECT_EQ(c.stats().writebacks, 1u);
}

TEST(Cache, PrefetchMarksLineAndDemandHitCountsUseful) {
  Cache c(tiny_cache());
  c.access(0x40, AccessType::Prefetch, 1, 5);
  EXPECT_EQ(c.stats().prefetch_misses, 1u);
  c.access(0x40, AccessType::Read, 10, 0);
  EXPECT_EQ(c.stats().useful_prefetches, 1u);
  // Second demand hit is no longer "useful" (already counted).
  c.access(0x40, AccessType::Read, 11, 0);
  EXPECT_EQ(c.stats().useful_prefetches, 1u);
}

TEST(Cache, LateFillHitReportsReadyTime) {
  Cache c(tiny_cache());
  c.access(0x80, AccessType::Prefetch, 1, /*fill_ready=*/100);
  const auto r = c.access(0x80, AccessType::Read, 50, 0);
  EXPECT_TRUE(r.hit);
  EXPECT_EQ(r.ready, 100u);
  EXPECT_EQ(c.stats().late_fill_hits, 1u);
}

TEST(Cache, ContainsHasNoSideEffects) {
  Cache c(tiny_cache());
  EXPECT_FALSE(c.contains(0x1000));
  EXPECT_EQ(c.stats().reads, 0u);
  c.access(0x1000, AccessType::Read, 1, 0);
  EXPECT_TRUE(c.contains(0x1000));
}

TEST(Cache, ResetClearsEverything) {
  Cache c(tiny_cache());
  c.access(0, AccessType::Read, 1, 0);
  c.reset();
  EXPECT_FALSE(c.contains(0));
  EXPECT_EQ(c.stats().reads, 0u);
}

TEST(MemorySystem, Table1LatencyLadder) {
  MemorySystem ms;  // defaults reproduce Table 1
  // Cold access: L1(1) + L2(12) + DRAM(120).
  const auto miss = ms.access(0x2000, AccessType::Read, 0);
  EXPECT_FALSE(miss.l1_hit);
  EXPECT_FALSE(miss.l2_hit);
  EXPECT_EQ(miss.latency, 1 + 12 + 120);
  // L1 hit after fill completes.
  const auto hit = ms.access(0x2000, AccessType::Read, 200);
  EXPECT_TRUE(hit.l1_hit);
  EXPECT_EQ(hit.latency, 1);
}

TEST(MemorySystem, L2HitCostsL1PlusL2) {
  MemorySystem ms;
  // Fill L1 and L2, then evict from the (smaller) L1 by conflicting
  // blocks: L1 has 256 sets * 32B blocks; same set every 8 KiB.
  ms.access(0x0, AccessType::Read, 0);
  for (int w = 1; w <= 4; ++w)
    ms.access(static_cast<std::uint64_t>(w) * 8192, AccessType::Read,
              static_cast<std::uint64_t>(w) * 200);
  const auto r = ms.access(0x0, AccessType::Read, 5000);
  EXPECT_FALSE(r.l1_hit);
  EXPECT_TRUE(r.l2_hit);
  EXPECT_EQ(r.latency, 1 + 12);
}

TEST(MemorySystem, AccessDuringFillPaysRemainingLatency) {
  MemorySystem ms;
  ms.access(0x3000, AccessType::Prefetch, 0);  // data ready at 133
  const auto r = ms.access(0x3000, AccessType::Read, 100);
  EXPECT_TRUE(r.l1_hit);
  EXPECT_EQ(r.latency, 1 + 33);  // remaining wait + L1 latency
}

TEST(MemorySystem, LatencySweepConfigs) {
  const auto cfg = MemConfig::with_latencies(16, 160);
  MemorySystem ms(cfg);
  const auto r = ms.access(0x0, AccessType::Read, 0);
  EXPECT_EQ(r.latency, 1 + 16 + 160);
}

TEST(MemorySystem, ProfileAttributesMissesToInstructions) {
  MemorySystem ms;
  ms.access(0x1000, AccessType::Read, 0, /*static_idx=*/7);
  ms.access(0x1000, AccessType::Read, 200, 7);
  ms.access(0x5000, AccessType::Read, 300, 9);
  const auto& prof = ms.profile();
  EXPECT_EQ(prof.at(7).accesses, 2u);
  EXPECT_EQ(prof.at(7).misses, 1u);
  EXPECT_EQ(prof.at(9).misses, 1u);
}

TEST(MemorySystem, PrefetchDoesNotPolluteProfileOrDemandStats) {
  MemorySystem ms;
  ms.access(0x1000, AccessType::Prefetch, 0, 3);
  EXPECT_TRUE(ms.profile().empty());
  EXPECT_EQ(ms.l1().stats().demand_accesses(), 0u);
  EXPECT_EQ(ms.l1().stats().prefetches, 1u);
}

TEST(MemorySystem, BusContentionSerializesMisses) {
  mem::MemConfig cfg;
  cfg.l2_bus_cycles = 10;
  MemorySystem ms(cfg);
  // Two simultaneous cold misses: the second waits for the bus.
  const auto a = ms.access(0x10000, AccessType::Read, 0);
  const auto b = ms.access(0x20000, AccessType::Read, 0);
  EXPECT_EQ(b.latency, a.latency + 10);
  EXPECT_EQ(ms.bus_busy_cycles(), 20u);
}

TEST(MemorySystem, BusOffByDefault) {
  MemorySystem ms;
  const auto a = ms.access(0x10000, AccessType::Read, 0);
  const auto b = ms.access(0x20000, AccessType::Read, 0);
  EXPECT_EQ(a.latency, b.latency);
  EXPECT_EQ(ms.bus_busy_cycles(), 0u);
}

TEST(MemorySystem, HitsNeverTouchTheBus) {
  mem::MemConfig cfg;
  cfg.l2_bus_cycles = 10;
  MemorySystem ms(cfg);
  ms.access(0x10000, AccessType::Read, 0);
  const auto before = ms.bus_busy_cycles();
  ms.access(0x10000, AccessType::Read, 500);  // L1 hit
  EXPECT_EQ(ms.bus_busy_cycles(), before);
}

TEST(Cache, PrefetchGroupAttribution) {
  Cache c(tiny_cache());
  c.access(0x00, AccessType::Prefetch, 1, 0, /*pf_group=*/3);
  c.access(0x40, AccessType::Prefetch, 2, 0, 3);
  c.access(0x00, AccessType::Read, 10, 0);  // group 3: used
  // Fill set 0 (blocks map set = block & 1): 0x00, 0x40, 0x80 share set 0
  // in a 2-set/16B cache -> evict the unused 0x40 eventually.
  c.access(0x80, AccessType::Read, 11, 0);
  c.access(0xc0, AccessType::Read, 12, 0);  // set 1
  c.access(0x100, AccessType::Read, 13, 0); // set 0 again: evicts 0x40
  const auto& g = c.prefetch_group_stats().at(3);
  EXPECT_EQ(g.installed, 2u);
  EXPECT_EQ(g.used, 1u);
  EXPECT_EQ(g.evicted_unused, 1u);
}

TEST(Cache, UngroupedPrefetchesAreNotTracked) {
  Cache c(tiny_cache());
  c.access(0x00, AccessType::Prefetch, 1, 0);
  c.access(0x00, AccessType::Read, 2, 0);
  EXPECT_TRUE(c.prefetch_group_stats().empty());
}

TEST(CacheStats, MissRate) {
  CacheStats s;
  s.reads = 80;
  s.read_misses = 10;
  s.writes = 20;
  s.write_misses = 10;
  EXPECT_DOUBLE_EQ(s.demand_miss_rate(), 0.2);
  EXPECT_DOUBLE_EQ(CacheStats{}.demand_miss_rate(), 0.0);
}

}  // namespace
}  // namespace hidisc::mem
