// Event-skip scheduler correctness (see docs/MACHINE.md).
//
// The contract under test: SchedulerKind::EventSkip produces a
// machine::Result bit-identical to SchedulerKind::Lockstep (the seed
// cycle-by-cycle scheduler) on every workload/preset/latency combination,
// while actually skipping idle cycles; and OoOCore::next_event_cycle is a
// sound, stable promise — no state change ever happens before the cycle it
// reports.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <random>
#include <vector>

#include "compiler/compile.hpp"
#include "machine/machine.hpp"
#include "mem/memory_system.hpp"
#include "sim/functional.hpp"
#include "uarch/core.hpp"
#include "uarch/event.hpp"
#include "workloads/common.hpp"

namespace hidisc {
namespace {

using machine::Machine;
using machine::MachineConfig;
using machine::Preset;
using machine::SchedulerKind;

struct Prepared {
  compiler::Compilation comp;
  sim::Trace orig_trace;
  sim::Trace sep_trace;
};

Prepared prepare(const workloads::BuiltWorkload& w) {
  Prepared p{compiler::compile(w.program), {}, {}};
  p.orig_trace = sim::Functional(p.comp.original).run_trace();
  p.sep_trace = sim::Functional(p.comp.separated).run_trace();
  return p;
}

// Runs one preset under the given scheduler and returns the Result plus
// the scheduler's telemetry.
machine::Result run_with(const Prepared& p, Preset preset, SchedulerKind k,
                         MachineConfig cfg,
                         machine::SchedulerStats* stats = nullptr) {
  cfg.scheduler = k;
  const bool sep = machine::uses_separated_binary(preset);
  Machine m(sep ? p.comp.separated : p.comp.original,
            sep ? p.sep_trace : p.orig_trace, preset, cfg);
  const auto r = m.run();
  if (stats != nullptr) *stats = m.sched_stats();
  return r;
}

constexpr Preset kAllPresets[] = {Preset::Superscalar, Preset::CPAP,
                                  Preset::CPCMP, Preset::HiDISC};

// The three DIS stressmarks the paper's Figures 8-10 lean on hardest.
std::vector<workloads::BuiltWorkload> paper_workloads() {
  std::vector<workloads::BuiltWorkload> ws;
  ws.push_back(workloads::make_pointer(workloads::Scale::Test));
  ws.push_back(workloads::make_update(workloads::Scale::Test));
  ws.push_back(workloads::make_field(workloads::Scale::Test));
  return ws;
}

TEST(SchedulerEquivalence, PaperWorkloadsAllPresetsTable1Latencies) {
  for (const auto& w : paper_workloads()) {
    const Prepared p = prepare(w);
    for (const Preset preset : kAllPresets) {
      const auto skip = run_with(p, preset, SchedulerKind::EventSkip, {});
      const auto lock = run_with(p, preset, SchedulerKind::Lockstep, {});
      EXPECT_TRUE(skip == lock)
          << w.name << "/" << machine::preset_name(preset)
          << ": event-skip {" << skip.cycles << " cycles, "
          << skip.instructions << " insts} vs lockstep {" << lock.cycles
          << " cycles, " << lock.instructions << " insts}";
    }
  }
}

TEST(SchedulerEquivalence, HighLatencySweepPointActuallySkips) {
  MachineConfig cfg;
  cfg.mem = mem::MemConfig::with_latencies(16, 160);  // Fig. 10 far point
  const Prepared p = prepare(workloads::make_update(workloads::Scale::Test));
  for (const Preset preset : kAllPresets) {
    machine::SchedulerStats stats;
    const auto skip =
        run_with(p, preset, SchedulerKind::EventSkip, cfg, &stats);
    const auto lock = run_with(p, preset, SchedulerKind::Lockstep, cfg);
    EXPECT_TRUE(skip == lock) << machine::preset_name(preset);
    // Memory-bound at DRAM 160: a real fraction of cycles must be skipped,
    // or the scheduler is silently degenerating to lockstep.
    EXPECT_GT(stats.skips, 0u) << machine::preset_name(preset);
    EXPECT_GT(stats.skipped_cycles, 0u) << machine::preset_name(preset);
    EXPECT_GT(stats.max_skip, 1u) << machine::preset_name(preset);
    EXPECT_LT(stats.event_steps, skip.cycles)
        << machine::preset_name(preset);
  }
}

TEST(Scheduler, QuiescentCoresAreNotTickedOnMemoryBoundStressmark) {
  MachineConfig cfg;
  cfg.mem = mem::MemConfig::with_latencies(16, 160);
  const Prepared p = prepare(workloads::make_matrix(workloads::Scale::Test));
  machine::SchedulerStats stats;
  const auto r =
      run_with(p, Preset::HiDISC, SchedulerKind::EventSkip, cfg, &stats);
  EXPECT_GT(r.cycles, 0u);
  // With CP, AP and CMP all present, some core must drain before the run
  // ends (the CP finishes its compute stream while the AP still waits on
  // DRAM) — those cores are skipped, not ticked.
  EXPECT_GT(stats.quiescent_core_ticks, 0u);
}

TEST(Scheduler, WatchdogCountsEventStepsNotSkippedCycles) {
  // DRAM far above the watchdog threshold: every miss is a legal stall
  // longer than watchdog_cycles.  The seed watchdog (raw cycle deltas)
  // would abort here; the event-step watchdog must ride through, because
  // each multi-thousand-cycle skip is a single stalled step.
  MachineConfig cfg;
  cfg.mem = mem::MemConfig::with_latencies(16, 5000);
  cfg.watchdog_cycles = 2000;
  const Prepared p = prepare(workloads::make_update(workloads::Scale::Test));
  const auto skip = run_with(p, Preset::Superscalar, SchedulerKind::EventSkip,
                             cfg);
  EXPECT_GT(skip.cycles, 5000u);
  // The same run with an ample watchdog agrees bit-for-bit, so the tight
  // watchdog changed nothing but the abort policy.
  cfg.watchdog_cycles = 100'000'000;
  const auto lock =
      run_with(p, Preset::Superscalar, SchedulerKind::Lockstep, cfg);
  EXPECT_TRUE(skip == lock);
}

TEST(Scheduler, LockstepVerifyEnvRunsBothAndAgrees) {
  ::setenv("HIDISC_LOCKSTEP", "1", 1);
  const Prepared p = prepare(workloads::make_field(workloads::Scale::Test));
  machine::Result r;
  EXPECT_NO_THROW({
    r = run_with(p, Preset::HiDISC, SchedulerKind::EventSkip, {});
  });
  ::unsetenv("HIDISC_LOCKSTEP");
  EXPECT_GT(r.cycles, 0u);
  EXPECT_GT(r.instructions, 0u);
}

// ---------------------------------------------------------------------------
// next_event_cycle soundness under random stimulus, against a raw OoOCore.

using isa::Instruction;
using isa::Opcode;
using isa::ir;

class NextEventTest : public ::testing::Test {
 protected:
  // Fixture owns instructions: DynOp keeps pointers into this storage.
  uarch::DynOp op_for(const Instruction& inst, std::uint64_t addr = 0) {
    held_.push_back(std::make_unique<Instruction>(inst));
    uarch::DynOp op;
    op.trace_pos = static_cast<std::int64_t>(held_.size()) - 1;
    op.static_idx = static_cast<std::int32_t>(held_.size()) - 1;
    op.inst = held_.back().get();
    op.addr = addr;
    return op;
  }

  std::vector<std::unique_ptr<Instruction>> held_;
  mem::MemorySystem memsys_;
};

TEST_F(NextEventTest, PromiseIsSoundAndStableUnderRandomStimulus) {
  uarch::CoreConfig cfg;
  cfg.name = "rand";
  cfg.window = 16;
  cfg.issue_width = 2;
  cfg.commit_width = 2;
  cfg.dispatch_width = 2;
  cfg.input_queue = 256;
  cfg.int_alu = 2;
  cfg.int_muldiv = 1;
  cfg.mem_ports = 1;
  cfg.has_lsu = true;
  uarch::OoOCore core(cfg, &memsys_, {});

  std::mt19937_64 rng(0xD15Cu);
  for (int i = 0; i < 200; ++i) {
    const int kind = static_cast<int>(rng() % 3);
    const int dst = 1 + static_cast<int>(rng() % 8);
    const int src = 1 + static_cast<int>(rng() % 8);
    Instruction inst;
    if (kind == 0) {  // dependent ALU op
      inst.op = Opcode::ADD;
      inst.dst = ir(static_cast<std::uint8_t>(dst));
      inst.src1 = ir(static_cast<std::uint8_t>(src));
      inst.src2 = ir(static_cast<std::uint8_t>(dst));
      ASSERT_TRUE(core.enqueue(op_for(inst)));
    } else if (kind == 1) {  // load with a scattered address (misses mix in)
      inst.op = Opcode::LD;
      inst.dst = ir(static_cast<std::uint8_t>(dst));
      inst.src1 = ir(static_cast<std::uint8_t>(src));
      ASSERT_TRUE(core.enqueue(op_for(inst, (rng() % 512) * 8192)));
    } else {  // long-latency integer multiply
      inst.op = Opcode::MUL;
      inst.dst = ir(static_cast<std::uint8_t>(dst));
      inst.src1 = ir(static_cast<std::uint8_t>(src));
      inst.src2 = ir(static_cast<std::uint8_t>(dst));
      ASSERT_TRUE(core.enqueue(op_for(inst)));
    }
  }

  std::uint64_t now = 0;
  std::uint64_t promise = 0;      // earliest promised event, 0 = none
  const std::uint64_t limit = 2'000'000;
  while (!core.drained()) {
    const bool progress = core.tick(now);
    if (progress) {
      // Soundness: a promise says nothing can change before that cycle.
      // Progress strictly before it means next_event_cycle missed an
      // event — the fatal direction for the event-skip scheduler.
      if (promise != 0) EXPECT_GE(now, promise) << "missed event at " << now;
      promise = 0;
    } else {
      const std::uint64_t ev = core.next_event_cycle(now);
      // A stalled-but-not-drained core must always have a wake-up point.
      ASSERT_NE(ev, uarch::kNoEvent) << "wedged at cycle " << now;
      ASSERT_GT(ev, now);
      // Stability: with no state change, the promise may not move earlier
      // across consecutive stalled cycles (monotonicity of the frozen
      // state's thresholds).
      if (promise != 0) EXPECT_GE(ev, promise) << "promise moved at " << now;
      promise = ev;
    }
    ASSERT_LT(++now, limit) << "core did not drain";
  }
}

// ---------------------------------------------------------------------------
// Incremental-frontier invariants under random stimulus (docs/MACHINE.md,
// "Hot-path data structures").  After every tick, debug_check_invariants
// recomputes by brute force what the core maintains incrementally — the
// completion frontier, the unissued population (active list + pinned heap
// + queue sleepers), every pin's justification at until-1, the pending-push
// cursors, the store-disambiguation map and the no_conflict promises — and
// throws std::logic_error on any disagreement.

TEST_F(NextEventTest, InvariantsHoldUnderRandomAluMemStimulus) {
  uarch::CoreConfig cfg;
  cfg.name = "inv";
  cfg.window = 16;
  cfg.issue_width = 2;
  cfg.commit_width = 2;
  cfg.dispatch_width = 2;
  cfg.input_queue = 64;
  cfg.lsq = 8;
  cfg.int_alu = 2;
  cfg.int_muldiv = 1;
  cfg.mem_ports = 1;
  cfg.has_lsu = true;
  uarch::OoOCore core(cfg, &memsys_, {});

  // Addresses collide on a handful of 8-byte lines so loads meet older
  // in-window stores: the store map, disambiguation pins, store-to-load
  // forwarding and the no_conflict fast path all get exercised.  DIVs
  // keep the single unpipelined unit saturated (pool-exhausted pins).
  std::mt19937_64 rng(0xC0FFEEu);
  const auto rand_addr = [&] { return (rng() % 8) * 8 + (rng() % 8) * 4096; };
  int fed = 0;
  std::uint64_t now = 0;
  const std::uint64_t limit = 1'000'000;
  while (fed < 400 || !core.drained()) {
    for (int burst = static_cast<int>(rng() % 3);
         burst-- > 0 && fed < 400 && !core.input_full(); ++fed) {
      const int dst = 1 + static_cast<int>(rng() % 8);
      const int src = 1 + static_cast<int>(rng() % 8);
      Instruction inst;
      std::uint64_t addr = 0;
      switch (rng() % 5) {
        case 0:  // dependent ALU op
          inst.op = Opcode::ADD;
          inst.src2 = ir(static_cast<std::uint8_t>(dst));
          break;
        case 1:  // unpipelined divide: hogs the single MUL/DIV unit
          inst.op = Opcode::DIV;
          inst.src2 = ir(static_cast<std::uint8_t>(dst));
          break;
        case 2:  // long-latency multiply
          inst.op = Opcode::MUL;
          inst.src2 = ir(static_cast<std::uint8_t>(dst));
          break;
        case 3:  // load, possibly behind an in-window store on its line
          inst.op = Opcode::LD;
          addr = rand_addr();
          break;
        default:  // store
          inst.op = Opcode::SD;
          inst.src2 = ir(static_cast<std::uint8_t>(dst));
          addr = rand_addr();
          break;
      }
      inst.dst = ir(static_cast<std::uint8_t>(dst));
      inst.src1 = ir(static_cast<std::uint8_t>(src));
      ASSERT_TRUE(core.enqueue(op_for(inst, addr)));
    }
    core.tick(now);
    ASSERT_NO_THROW(core.debug_check_invariants(now)) << "cycle " << now;
    ASSERT_LT(++now, limit) << "core did not drain";
  }
  EXPECT_GT(core.stats().committed, 0u);
  EXPECT_GT(core.stats().forwarded_loads, 0u);  // stimulus really collided
}

TEST_F(NextEventTest, InvariantsHoldAcrossQueueProducerConsumerPair) {
  // A producer core feeding an LDQ that a consumer core pops, with the
  // producer deliberately bursty so the consumer's POPLDQ entries run the
  // queue dry and park as queue sleepers (woken by push-generation
  // change), both as the program-order head and behind it.
  uarch::TimedFifo ldq("LDQ", 4);
  uarch::CoreConfig pcfg;
  pcfg.name = "prod";
  pcfg.window = 8;
  pcfg.issue_width = 1;
  pcfg.commit_width = 1;
  pcfg.dispatch_width = 1;
  pcfg.input_queue = 128;
  pcfg.has_lsu = false;
  pcfg.fp_alu = 0;
  uarch::CoreConfig ccfg = pcfg;
  ccfg.name = "cons";
  ccfg.issue_width = 2;
  ccfg.dispatch_width = 2;
  ccfg.commit_width = 2;
  uarch::OoOCore::Queues qs;
  qs.ldq = &ldq;
  uarch::OoOCore prod(pcfg, &memsys_, qs);
  uarch::OoOCore cons(ccfg, &memsys_, qs);

  std::mt19937_64 rng(0xF1F0u);
  constexpr int kTokens = 60;
  // The consumer's whole program is enqueued up front: each POPLDQ is
  // chased by a dependent ADD so issue pressure stays up while it waits.
  for (int i = 0; i < kTokens; ++i) {
    Instruction pop;
    pop.op = Opcode::POPLDQ;
    pop.dst = ir(1);
    ASSERT_TRUE(cons.enqueue(op_for(pop)));
    Instruction add;
    add.op = Opcode::ADD;
    add.dst = ir(2);
    add.src1 = ir(1);
    add.src2 = ir(2);
    ASSERT_TRUE(cons.enqueue(op_for(add)));
  }

  int pushed = 0;
  std::uint64_t now = 0;
  const std::uint64_t limit = 1'000'000;
  while (!cons.drained() || !prod.drained() || pushed < kTokens) {
    // Bursty producer: long silences followed by clumps of pushes.
    if (pushed < kTokens && now % 23 == 0) {
      for (int burst = 1 + static_cast<int>(rng() % 3);
           burst-- > 0 && pushed < kTokens; ++pushed) {
        Instruction push;
        push.op = Opcode::PUSHLDQ;
        push.src1 = ir(3);
        ASSERT_TRUE(prod.enqueue(op_for(push)));
      }
    }
    prod.tick(now);
    cons.tick(now);
    ASSERT_NO_THROW(prod.debug_check_invariants(now)) << "cycle " << now;
    ASSERT_NO_THROW(cons.debug_check_invariants(now)) << "cycle " << now;
    ASSERT_LT(++now, limit) << "pair did not drain";
  }
  EXPECT_EQ(cons.stats().committed, 2u * kTokens);
  // The dry spells must really have parked the consumer's head on the
  // empty queue — otherwise this test lost its sleeper coverage.
  EXPECT_GT(cons.stats().head_pop_empty_stalls, 0u);
  EXPECT_TRUE(ldq.empty());
}

}  // namespace
}  // namespace hidisc
