// Decoder and threaded-interpreter coverage (docs/FUNCTIONAL.md):
//
//  * per-opcode golden tests: every `DecodedOp` field round-trips the
//    `isa::` encoding, including the commit-class dst rules (r0 sink, f0
//    writable, kind-mismatched destinations) and the pre-shifted LUI
//    immediate;
//  * superinstruction fusion: sites are detected, chained pairs rewrite
//    only their first slot, and control transfers landing on the second
//    component of a fused pair execute it unfused with identical traces;
//  * dual-interpreter property: every corpus kernel and test-scale paper
//    workload produces byte-identical traces under the threaded and the
//    reference switch interpreters;
//  * interrupted step budgets: expiry at every point of a fused loop —
//    including between the two components of a pair — leaves behaviour
//    identical to the reference, and step() resumes from the partial state.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstring>
#include <limits>
#include <string>

#include "compiler/compile.hpp"
#include "fuzz/corpus.hpp"
#include "isa/assembler.hpp"
#include "sim/decoded.hpp"
#include "sim/functional.hpp"
#include "workloads/common.hpp"

#ifndef HIDISC_CORPUS_DIR
#error "HIDISC_CORPUS_DIR must point at tests/corpus"
#endif

namespace hidisc::sim {
namespace {

using isa::Opcode;

// Commit class expected of each opcode — stated independently of the
// decoder so the table below is a second spelling of the reference
// interpreter's wr()/wf() usage, not a mirror of decoded.cpp.
enum class Want { None, Int, Fp };

Want want_commit(Opcode op) {
  switch (op) {
    // Int ALU / compares / int immediates.
    case Opcode::ADD: case Opcode::SUB: case Opcode::MUL: case Opcode::DIV:
    case Opcode::REM: case Opcode::AND: case Opcode::OR: case Opcode::XOR:
    case Opcode::NOR: case Opcode::SLL: case Opcode::SRL: case Opcode::SRA:
    case Opcode::SLT: case Opcode::SLTU: case Opcode::ADDI: case Opcode::ANDI:
    case Opcode::ORI: case Opcode::XORI: case Opcode::SLLI: case Opcode::SRLI:
    case Opcode::SRAI: case Opcode::SLTI: case Opcode::LUI:
    // FP-to-int results.
    case Opcode::CVTFI: case Opcode::FEQ: case Opcode::FLT: case Opcode::FLE:
    // Int loads, links, int queue pops.
    case Opcode::LB: case Opcode::LBU: case Opcode::LH: case Opcode::LHU:
    case Opcode::LW: case Opcode::LWU: case Opcode::LD:
    case Opcode::JAL: case Opcode::JALR:
    case Opcode::POPLDQ: case Opcode::POPSDQ:
      return Want::Int;
    case Opcode::FADD: case Opcode::FSUB: case Opcode::FMUL: case Opcode::FDIV:
    case Opcode::FSQRT: case Opcode::FMIN: case Opcode::FMAX:
    case Opcode::FNEG: case Opcode::FABS: case Opcode::FMOV:
    case Opcode::CVTIF: case Opcode::FLD:
    case Opcode::POPLDQF: case Opcode::POPSDQF:
      return Want::Fp;
    default:
      // Stores (including FSD), branches, jumps without link, queue pushes,
      // EOD/SCQ tokens, PREF, HALT, NOP: no register commit.
      return Want::None;
  }
}

DecodedOp decode_single(const isa::Instruction& inst) {
  isa::Program p;
  p.code.push_back(inst);
  const DecodedProgram d = decode_program(p, /*fuse=*/false);
  return d.ops.at(0);
}

TEST(DecodedGolden, KindIsTheOpcodeOrdinal) {
  for (int o = 0; o < static_cast<int>(Opcode::kCount); ++o) {
    isa::Instruction inst;
    inst.op = static_cast<Opcode>(o);
    EXPECT_EQ(decode_single(inst).kind, o)
        << isa::op_info(inst.op).name;
  }
  isa::Instruction bad;
  bad.op = Opcode::kCount;
  EXPECT_EQ(decode_single(bad).kind, kExecInvalid);
}

TEST(DecodedGolden, OperandFieldsRoundTrip) {
  for (int o = 0; o < static_cast<int>(Opcode::kCount); ++o) {
    const auto op = static_cast<Opcode>(o);
    isa::Instruction inst;
    inst.op = op;
    inst.src1 = want_commit(op) == Want::Fp ? isa::fr(7) : isa::ir(7);
    inst.src2 = isa::ir(11);
    inst.imm = 0x1234;
    inst.target = 3;
    const DecodedOp d = decode_single(inst);
    EXPECT_EQ(d.src1, 7) << isa::op_info(op).name;
    EXPECT_EQ(d.src2, 11) << isa::op_info(op).name;
    EXPECT_EQ(d.target, 3) << isa::op_info(op).name;
    if (op == Opcode::LUI)
      EXPECT_EQ(d.imm, std::int64_t{0x1234} << 16);
    else
      EXPECT_EQ(d.imm, 0x1234) << isa::op_info(op).name;
    EXPECT_EQ(d.flags, 0) << isa::op_info(op).name;
  }
}

TEST(DecodedGolden, DstFollowsTheCommitClass) {
  for (int o = 0; o < static_cast<int>(Opcode::kCount); ++o) {
    const auto op = static_cast<Opcode>(o);
    const char* name = isa::op_info(op).name.data();
    isa::Instruction inst;
    inst.op = op;
    switch (want_commit(op)) {
      case Want::Int:
        inst.dst = isa::ir(5);
        EXPECT_EQ(decode_single(inst).dst, 5) << name;
        // r0 is hardwired zero: commits to the sink slot.
        inst.dst = isa::ir(0);
        EXPECT_EQ(decode_single(inst).dst, kSinkReg) << name;
        // A kind-mismatched destination never receives the int result.
        inst.dst = isa::fr(5);
        EXPECT_EQ(decode_single(inst).dst, kSinkReg) << name;
        break;
      case Want::Fp:
        inst.dst = isa::fr(5);
        EXPECT_EQ(decode_single(inst).dst, 5) << name;
        // f0 is writable, unlike r0.
        inst.dst = isa::fr(0);
        EXPECT_EQ(decode_single(inst).dst, 0) << name;
        inst.dst = isa::ir(5);
        EXPECT_EQ(decode_single(inst).dst, kSinkReg) << name;
        break;
      case Want::None:
        inst.dst = isa::ir(5);
        EXPECT_EQ(decode_single(inst).dst, kSinkReg) << name;
        inst.dst = isa::fr(5);
        EXPECT_EQ(decode_single(inst).dst, kSinkReg) << name;
        break;
    }
  }
}

TEST(DecodedGolden, AnnotationPushFlags) {
  isa::Instruction inst;
  inst.op = Opcode::ADD;
  EXPECT_EQ(decode_single(inst).flags, 0);
  inst.ann.push_ldq = true;
  EXPECT_EQ(decode_single(inst).flags, kFlagPushLdq);
  inst.ann.push_sdq = true;
  EXPECT_EQ(decode_single(inst).flags, kFlagPushLdq | kFlagPushSdq);
  inst.ann.push_ldq = false;
  EXPECT_EQ(decode_single(inst).flags, kFlagPushSdq);
}

// ---------------------------------------------------------------------------
// Fusion.

TEST(Fusion, SitesAreDetectedAndCounted) {
  const auto prog = isa::assemble(
      "  li r1, 0\n"
      "  li r2, 10\n"
      "loop:\n"
      "  addi r1, r1, 1\n"
      "  bne r1, r2, loop\n"
      "  halt\n");
  const DecodedProgram d = decode_program(prog);
  EXPECT_GT(d.stats.fused_sites, 0u);
  EXPECT_EQ(d.ops.at(prog.code_index("loop")).kind, kFuseAddiBne);
  // The second component keeps its own unfused decoded form.
  EXPECT_EQ(d.ops.at(prog.code_index("loop") + 1).kind, kExecBNE);
}

TEST(Fusion, ChainedPairsRewriteOnlyTheFirstSlot) {
  const auto prog = isa::assemble(
      "  addi r1, r1, 1\n"
      "  addi r2, r2, 2\n"
      "  addi r3, r3, 3\n"
      "  halt\n");
  const DecodedProgram d = decode_program(prog);
  EXPECT_EQ(d.ops.at(0).kind, kFuseAddiAddi);
  EXPECT_EQ(d.ops.at(1).kind, kFuseAddiAddi);
  EXPECT_EQ(d.ops.at(2).kind, kExecADDI);
  EXPECT_EQ(d.stats.fused_sites, 2u);
}

TEST(Fusion, DisabledPassLeavesPlainKinds) {
  const auto prog = isa::assemble(
      "  addi r1, r1, 1\n"
      "  addi r2, r2, 2\n"
      "  halt\n");
  const DecodedProgram d = decode_program(prog, /*fuse=*/false);
  EXPECT_EQ(d.ops.at(0).kind, kExecADDI);
  EXPECT_EQ(d.stats.fused_sites, 0u);
}

// Runs a program through both interpreters and asserts byte-identical
// traces, outcomes and final state.  Returns the threaded trace.
Trace expect_interpreters_agree(const isa::Program& prog,
                                std::uint64_t max_steps =
                                    Functional::kDefaultMaxSteps) {
  Functional ft(prog);
  bool t_ok = true;
  std::string t_err;
  Trace t;
  try {
    t = ft.run_trace(max_steps);
  } catch (const ExecError& e) {
    t_ok = false;
    t_err = e.what();
  }
  Functional fr(prog);
  bool r_ok = true;
  std::string r_err;
  Trace r;
  try {
    r = fr.run_trace_ref(max_steps);
  } catch (const ExecError& e) {
    r_ok = false;
    r_err = e.what();
  }
  EXPECT_EQ(t_ok, r_ok) << t_err << " / " << r_err;
  EXPECT_EQ(t_err, r_err);
  EXPECT_EQ(t.size(), r.size());
  if (t.size() == r.size() && !t.empty())
    EXPECT_EQ(std::memcmp(t.data(), r.data(), t.size() * sizeof(TraceEntry)),
              0);
  EXPECT_EQ(ft.instructions(), fr.instructions());
  EXPECT_EQ(ft.pc(), fr.pc());
  EXPECT_EQ(ft.halted(), fr.halted());
  EXPECT_EQ(ft.state_digest(), fr.state_digest());
  return t;
}

TEST(Fusion, BranchIntoSecondComponentExecutesItUnfused) {
  // The jump lands on the second addi of a fused addi+addi pair; that slot
  // must execute as a plain addi (then fall into the bne), and the whole
  // run must match the reference byte for byte.
  // r1 passes the bne with odd values (1, 3, ..., 21), so the bound is odd.
  const auto prog = isa::assemble(
      "  li r2, 21\n"
      "  j mid\n"
      "loop:\n"
      "  addi r1, r1, 1\n"
      "mid:\n"
      "  addi r1, r1, 1\n"
      "  bne r1, r2, loop\n"
      "  halt\n");
  const DecodedProgram d = decode_program(prog);
  ASSERT_EQ(d.ops.at(prog.code_index("loop")).kind, kFuseAddiAddi);
  const Trace t = expect_interpreters_agree(prog);
  EXPECT_FALSE(t.empty());
}

// ---------------------------------------------------------------------------
// Dual-interpreter property over the checked-in corpus and the paper
// workloads at test scale.

TEST(DualInterpreter, CorpusKernelsProduceIdenticalTraces) {
  const auto corpus = fuzz::load_corpus(HIDISC_CORPUS_DIR);
  ASSERT_FALSE(corpus.empty());
  for (const auto& r : corpus) {
    isa::Program prog;
    try {
      prog = isa::assemble(r.source);
    } catch (const std::exception&) {
      continue;  // assembly failures are corpus_test's concern
    }
    SCOPED_TRACE(r.name);
    expect_interpreters_agree(prog, /*max_steps=*/8'000'000);
  }
}

TEST(DualInterpreter, PaperWorkloadsProduceIdenticalTraces) {
  for (const auto& w : workloads::paper_suite(workloads::Scale::Test)) {
    SCOPED_TRACE(w.name);
    const auto comp = compiler::compile(w.program);
    const Trace to = expect_interpreters_agree(comp.original);
    EXPECT_FALSE(to.empty());
    const Trace ts = expect_interpreters_agree(comp.separated);
    EXPECT_FALSE(ts.empty());
  }
}

TEST(DualInterpreter, NaNResultsCommitAsTheCanonicalQuietNaN) {
  // IEEE 754 leaves NaN payload propagation open and x86 resolves it by
  // machine-operand order, so `+qNaN + -qNaN` compiled in two different
  // contexts can yield either sign bit.  HISA pins every NaN-capable
  // arithmetic result to canon_nan (docs/FUNCTIONAL.md); assert the exact
  // trace bytes, not just inter-interpreter agreement (found by the fuzz
  // campaign as sig fsim-div:original, seed 4571229358325483140).
  const auto prog = isa::assemble(
      ".data\n"
      "k: .double 0.0, 1.0, -1.0\n"
      ".text\n"
      "  la r6, k\n"
      "  fld f1, 0(r6)\n"
      "  fld f2, 8(r6)\n"
      "  fld f3, 16(r6)\n"
      "  fdiv f4, f1, f1\n"    // 0/0 -> NaN
      "  fneg f5, f4\n"        // opposite-sign NaN (bit op)
      "  fadd f6, f4, f5\n"    // NaN+NaN, both operand orders
      "  fadd f7, f5, f4\n"
      "  fmin f8, f4, f5\n"
      "  fmax f9, f5, f4\n"
      "  fsqrt f10, f3\n"      // sqrt(-1) -> NaN
      "  fdiv f11, f2, f1\n"   // 1/0 -> +inf
      "  fsub f12, f11, f11\n" // inf-inf -> NaN
      "  fmul f13, f1, f11\n"  // 0*inf -> NaN
      "  halt\n");
  const Trace t = expect_interpreters_agree(prog);
  const auto canon =
      std::bit_cast<std::int64_t>(std::numeric_limits<double>::quiet_NaN());
  std::size_t nans = 0;
  for (const auto& e : t) {
    const Opcode op = prog.code[static_cast<std::size_t>(e.static_idx)].op;
    if (op == Opcode::FNEG || op == Opcode::FLD) continue;  // payload ops
    if (std::isnan(std::bit_cast<double>(e.value))) {
      EXPECT_EQ(e.value, canon) << "entry " << e.static_idx;
      ++nans;
    }
  }
  // fdiv(0/0), both fadds, fmin, fmax, fsqrt, fsub, fmul -- the 1/0 fdiv
  // yields +inf, not NaN.
  EXPECT_EQ(nans, 8u);
}

// ---------------------------------------------------------------------------
// Interrupted step budgets.

TEST(Budget, ExpiryAtEveryPointOfAFusedLoopMatchesReference) {
  // ops[loop] fuses addi+bne, so odd budgets expire between the two
  // components of the pair: FUSE_GUARD must fall back to the single-op
  // handler and leave exactly the reference's partial state behind.
  const auto prog = isa::assemble(
      "  li r1, 0\n"
      "  li r2, 1000\n"
      "loop:\n"
      "  addi r1, r1, 1\n"
      "  bne r1, r2, loop\n"
      "  halt\n");
  ASSERT_EQ(decode_program(prog).ops.at(prog.code_index("loop")).kind,
            kFuseAddiBne);
  for (std::uint64_t budget = 0; budget < 32; ++budget) {
    SCOPED_TRACE(budget);
    expect_interpreters_agree(prog, budget);
  }
}

TEST(Budget, StepResumesFromThreadedPartialState) {
  const auto prog = isa::assemble(
      "  li r1, 0\n"
      "  li r2, 50\n"
      "loop:\n"
      "  addi r1, r1, 1\n"
      "  bne r1, r2, loop\n"
      "  halt\n");
  // Exhaust an odd budget through the threaded path, then single-step the
  // reference interpreter to completion from the partial state.
  Functional f(prog);
  EXPECT_THROW(f.run(/*max_steps=*/7), ExecError);
  EXPECT_EQ(f.instructions(), 7u);
  while (f.step()) {
  }
  EXPECT_TRUE(f.halted());
  Functional whole(prog);
  whole.run();
  EXPECT_EQ(f.instructions(), whole.instructions());
  EXPECT_EQ(f.state_digest(), whole.state_digest());
}

TEST(Budget, ExactBudgetCompletesAndEmitsIdenticalTraces) {
  const auto prog = isa::assemble(
      "  li r1, 0\n"
      "  li r2, 4\n"
      "loop:\n"
      "  addi r1, r1, 1\n"
      "  bne r1, r2, loop\n"
      "  halt\n");
  Functional count(prog);
  count.run();
  const std::uint64_t exact = count.instructions();
  expect_interpreters_agree(prog, exact);      // completes on the last step
  expect_interpreters_agree(prog, exact - 1);  // throws on both paths
}

}  // namespace
}  // namespace hidisc::sim
