// Failure forensics: the flight recorder, the DeadlockReport classifier,
// and the typed DeadlockError thrown by the timing machines.
//
// The classifier is exercised two ways: pure-unit (hand-built
// DeadlockReport snapshots, one per root-cause class) and end-to-end
// (hand-broken kernels driven through machine::Machine until the watchdog
// fires, asserting the caught report carries the expected class and
// evidence).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "diag/deadlock.hpp"
#include "diag/flight_recorder.hpp"
#include "isa/assembler.hpp"
#include "machine/machine.hpp"
#include "sim/functional.hpp"

namespace hidisc {
namespace {

using diag::DeadlockCause;
using diag::DeadlockReport;
using diag::FlightRecorder;
using diag::StallWhy;
using diag::StepKind;
using diag::StepRecord;
using isa::Stream;

// ---- flight recorder -------------------------------------------------------

TEST(FlightRecorder, DepthRoundsUpToPowerOfTwoWithFloor) {
  EXPECT_EQ(FlightRecorder(1).capacity(), 16u);
  EXPECT_EQ(FlightRecorder(16).capacity(), 16u);
  EXPECT_EQ(FlightRecorder(17).capacity(), 32u);
  EXPECT_EQ(FlightRecorder(64).capacity(), 64u);
  EXPECT_EQ(FlightRecorder(100).capacity(), 128u);
}

TEST(FlightRecorder, SnapshotBeforeWrapIsOldestFirst) {
  FlightRecorder rec(16);
  for (std::uint64_t i = 0; i < 5; ++i) {
    StepRecord r;
    r.cycle = i;
    r.kind = StepKind::Progress;
    rec.record(r);
  }
  EXPECT_EQ(rec.recorded(), 5u);
  const auto tail = rec.snapshot();
  ASSERT_EQ(tail.size(), 5u);
  for (std::uint64_t i = 0; i < 5; ++i) EXPECT_EQ(tail[i].cycle, i);
}

TEST(FlightRecorder, WrapKeepsOnlyTheMostRecentCapacityRecords) {
  FlightRecorder rec(16);
  for (std::uint64_t i = 0; i < 40; ++i) {
    StepRecord r;
    r.cycle = i;
    rec.record(r);
  }
  EXPECT_EQ(rec.recorded(), 40u);
  const auto tail = rec.snapshot();
  ASSERT_EQ(tail.size(), 16u);
  // Oldest retained record is 40 - 16 = 24; tail ascends from there.
  for (std::size_t i = 0; i < tail.size(); ++i)
    EXPECT_EQ(tail[i].cycle, 24u + i);
}

// ---- classifier units ------------------------------------------------------

// A minimal report skeleton with the standard three queues.
DeadlockReport skeleton() {
  DeadlockReport rep;
  rep.preset = "CP+AP";
  rep.scheduler = "EventSkip";
  rep.trace_size = 100;
  rep.fetch_pos = 50;
  for (const char* name : {"LDQ", "SDQ", "SCQ"}) {
    diag::QueueSnapshot q;
    q.name = name;
    q.capacity = 32;
    rep.queues.push_back(q);
  }
  return rep;
}

diag::CoreSnapshot stalled_core(const std::string& name, StallWhy why,
                                const std::string& op,
                                const std::string& queue) {
  diag::CoreSnapshot c;
  c.name = name;
  c.has_stall = true;
  c.why = why;
  c.op = op;
  c.queue = queue;
  c.trace_pos = 7;
  return c;
}

TEST(DeadlockClassify, PushFullIsQueueFullCycle) {
  auto rep = skeleton();
  rep.cores.push_back(
      stalled_core("AP", StallWhy::PushFull, "pushldq", "LDQ"));
  EXPECT_EQ(diag::classify(rep), DeadlockCause::QueueFullCycle);
  EXPECT_NE(rep.cause_detail.find("LDQ"), std::string::npos);
  EXPECT_NE(rep.cause_detail.find("pushldq"), std::string::npos);
}

TEST(DeadlockClassify, BeodOnEmptyQueueIsEodMismatch) {
  auto rep = skeleton();
  rep.cores.push_back(stalled_core("CP", StallWhy::PopEmpty, "beod", "LDQ"));
  EXPECT_EQ(diag::classify(rep), DeadlockCause::EodMismatch);
  EXPECT_NE(rep.cause_detail.find("end-of-data"), std::string::npos);
}

TEST(DeadlockClassify, PlainPopOnEmptyQueueIsCrossStreamImbalance) {
  auto rep = skeleton();
  rep.cores.push_back(
      stalled_core("CP", StallWhy::PopEmpty, "popldq", "LDQ"));
  EXPECT_EQ(diag::classify(rep), DeadlockCause::CrossStreamImbalance);
  EXPECT_NE(rep.cause_detail.find("popldq"), std::string::npos);
}

TEST(DeadlockClassify, EmptyEventSetWithNoStallIsNoPendingEvent) {
  auto rep = skeleton();
  rep.no_pending_event = true;  // no stalled core snapshots at all
  EXPECT_EQ(diag::classify(rep), DeadlockCause::NoPendingEvent);
  EXPECT_NE(rep.cause_detail.find("no timed event"), std::string::npos);
}

TEST(DeadlockClassify, QueueStallOutranksNoPendingEvent) {
  // Priority: a concrete queue-level stall explains the wedge better than
  // the scheduler-level "event set went empty" observation.
  auto rep = skeleton();
  rep.no_pending_event = true;
  rep.cores.push_back(
      stalled_core("CP", StallWhy::PopEmpty, "popldq", "LDQ"));
  EXPECT_EQ(diag::classify(rep), DeadlockCause::CrossStreamImbalance);
}

TEST(DeadlockClassify, InFlightHeadIsUnknownWithWatchdogHint) {
  auto rep = skeleton();
  rep.cores.push_back(stalled_core("SS", StallWhy::InFlight, "ld", ""));
  EXPECT_EQ(diag::classify(rep), DeadlockCause::Unknown);
  EXPECT_NE(rep.cause_detail.find("watchdog_cycles"), std::string::npos);
}

TEST(DeadlockReport, SummaryKeepsTheHistoricalPrefix) {
  // Pre-existing tests and scripts match on this prefix; the classified
  // cause extends it, never replaces it.
  auto rep = skeleton();
  rep.last_progress_cycle = 42;
  diag::classify(rep);
  EXPECT_EQ(rep.summary().rfind("machine deadlock: no progress since cycle",
                                0),
            0u);
  const diag::DeadlockError err(rep);
  EXPECT_EQ(std::string(err.what()), err.report().summary());
}

// ---- end-to-end: hand-broken kernels through the timing machine ------------

// Runs `m.run()` expecting a DeadlockError; returns its report.
template <class Fn>
DeadlockReport expect_deadlock(Fn&& run) {
  try {
    run();
  } catch (const diag::DeadlockError& e) {
    return e.report();
  }
  ADD_FAILURE() << "machine completed without deadlocking";
  return {};
}

TEST(DeadlockE2E, UnmatchedPopClassifiesAsCrossStreamImbalance) {
  // The machine_test watchdog kernel: a POPLDQ with no matching push.
  auto prog = isa::assemble("popldq r1\nhalt\n");
  prog.code[0].ann.stream = Stream::Compute;
  prog.code[1].ann.stream = Stream::Access;
  sim::Trace trace;
  trace.push_back({0, 1, 0, 0});
  trace.push_back({1, 1, 0, 0});
  machine::MachineConfig cfg;
  cfg.watchdog_cycles = 2000;
  const auto rep = expect_deadlock([&] {
    machine::Machine m(prog, trace, machine::Preset::CPAP, cfg);
    (void)m.run();
  });
  EXPECT_EQ(rep.cause, DeadlockCause::CrossStreamImbalance);
  EXPECT_EQ(rep.preset, "CP+AP");
  ASSERT_EQ(rep.queues.size(), 3u);
  EXPECT_EQ(rep.queues[0].name, "LDQ");
  EXPECT_EQ(rep.queues[0].size, 0u);
  // The stalled consumer is visible with its op and queue.
  bool found = false;
  for (const auto& c : rep.cores)
    if (c.has_stall && c.why == StallWhy::PopEmpty) {
      EXPECT_EQ(c.op, "popldq");
      EXPECT_EQ(c.queue, "LDQ");
      found = true;
    }
  EXPECT_TRUE(found);
  // The flight recorder tail made it into the report and ends with the
  // deadlock marker.
  ASSERT_FALSE(rep.recent.empty());
  EXPECT_EQ(rep.recent.back().kind, StepKind::Deadlock);
}

TEST(DeadlockE2E, BeodWithoutProducerClassifiesAsEodMismatch) {
  // A BEOD guard polling a queue whose producer never signals
  // end-of-data.
  auto prog = isa::assemble("top:\nbeod top\nhalt\n");
  prog.code[0].ann.stream = Stream::Compute;
  prog.code[1].ann.stream = Stream::Access;
  sim::Trace trace;
  trace.push_back({0, 1, 0, 0});
  trace.push_back({1, 1, 0, 0});
  machine::MachineConfig cfg;
  cfg.watchdog_cycles = 2000;
  const auto rep = expect_deadlock([&] {
    machine::Machine m(prog, trace, machine::Preset::CPAP, cfg);
    (void)m.run();
  });
  EXPECT_EQ(rep.cause, DeadlockCause::EodMismatch);
  EXPECT_NE(rep.cause_detail.find("beod"), std::string::npos);
}

TEST(DeadlockE2E, BatchBeyondQueueCapacityClassifiesAsQueueFullCycle) {
  // The sequential batch-overflow layout: 100 pushes race ahead of the
  // first pop and wedge the 32-entry LDQ (the kernel behind
  // HandDecoupled.SequentialBatchBeyondQueueCapacityDeadlocks).
  const char* src = R"(
.text
_start:
  li   r5, 100
produce:
  pushldq r5
  addi r5, r5, -1
  bne  r5, r0, produce
consume:
  li   r6, 100
drain:
  popldq r7
  addi r6, r6, -1
  bne  r6, r0, drain
  halt
)";
  auto prog = isa::assemble(src);
  const auto consume = prog.code_index("consume");
  for (std::size_t i = 0; i < prog.code.size(); ++i)
    prog.code[i].ann.stream = Stream::Access;
  for (std::size_t i = consume; i + 1 < prog.code.size(); ++i)
    prog.code[i].ann.stream = Stream::Compute;
  sim::Functional f(prog);
  const auto trace = f.run_trace();
  machine::MachineConfig cfg;
  cfg.watchdog_cycles = 20'000;
  const auto rep = expect_deadlock([&] {
    machine::Machine m(prog, trace, machine::Preset::CPAP, cfg);
    (void)m.run();
  });
  EXPECT_EQ(rep.cause, DeadlockCause::QueueFullCycle);
  // Evidence: the LDQ really is at capacity, and the producer's push is
  // named as the wedged op.
  ASSERT_EQ(rep.queues.size(), 3u);
  EXPECT_EQ(rep.queues[0].name, "LDQ");
  EXPECT_EQ(rep.queues[0].size, rep.queues[0].capacity);
  EXPECT_NE(rep.cause_detail.find("pushldq"), std::string::npos);
}

TEST(DeadlockE2E, BothSchedulersClassifyIdentically) {
  // EventSkip detects the wedge via the empty event set, Lockstep via the
  // watchdog; the classified cause must not depend on the detection path.
  auto prog = isa::assemble("popldq r1\nhalt\n");
  prog.code[0].ann.stream = Stream::Compute;
  prog.code[1].ann.stream = Stream::Access;
  sim::Trace trace;
  trace.push_back({0, 1, 0, 0});
  trace.push_back({1, 1, 0, 0});
  machine::MachineConfig cfg;
  cfg.watchdog_cycles = 2000;
  for (const auto kind : {machine::SchedulerKind::EventSkip,
                          machine::SchedulerKind::Lockstep}) {
    cfg.scheduler = kind;
    const auto rep = expect_deadlock([&] {
      machine::Machine m(prog, trace, machine::Preset::CPAP, cfg);
      (void)m.run();
    });
    EXPECT_EQ(rep.cause, DeadlockCause::CrossStreamImbalance)
        << "scheduler " << static_cast<int>(kind);
  }
}

// ---- serialization ---------------------------------------------------------

TEST(DeadlockReport, JsonCarriesCauseQueuesCoresAndRecent) {
  auto prog = isa::assemble("popldq r1\nhalt\n");
  prog.code[0].ann.stream = Stream::Compute;
  prog.code[1].ann.stream = Stream::Access;
  sim::Trace trace;
  trace.push_back({0, 1, 0, 0});
  trace.push_back({1, 1, 0, 0});
  machine::MachineConfig cfg;
  cfg.watchdog_cycles = 2000;
  const auto rep = expect_deadlock([&] {
    machine::Machine m(prog, trace, machine::Preset::CPAP, cfg);
    (void)m.run();
  });

  const std::string json = rep.to_json();
  for (const char* needle :
       {"\"kind\": \"deadlock\"", "\"cause\": \"cross-stream-imbalance\"",
        "\"queues\": [", "\"cores\": [", "\"recent\": [",
        "\"name\": \"LDQ\"", "\"why\": \"pop-empty\""}) {
    EXPECT_NE(json.find(needle), std::string::npos) << "missing " << needle;
  }
  // Balanced braces/brackets — cheap well-formedness proxy (CI runs a
  // real JSON parse over the hisa --deadlock-json artifact).
  int braces = 0, brackets = 0;
  for (const char c : json) {
    braces += c == '{' ? 1 : c == '}' ? -1 : 0;
    brackets += c == '[' ? 1 : c == ']' ? -1 : 0;
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);

  const std::string text = rep.to_text();
  EXPECT_NE(text.find("queues:"), std::string::npos);
  EXPECT_NE(text.find("cores:"), std::string::npos);
  EXPECT_NE(text.find("recorded transitions"), std::string::npos);
}

TEST(FlightRecorderConfig, DepthIsConfigurableThroughMachineConfig) {
  auto prog = isa::assemble("popldq r1\nhalt\n");
  prog.code[0].ann.stream = Stream::Compute;
  prog.code[1].ann.stream = Stream::Access;
  sim::Trace trace;
  trace.push_back({0, 1, 0, 0});
  trace.push_back({1, 1, 0, 0});
  machine::MachineConfig cfg;
  cfg.watchdog_cycles = 2000;
  cfg.flight_recorder_depth = 128;
  cfg.scheduler = machine::SchedulerKind::Lockstep;  // one record per cycle
  const auto rep = expect_deadlock([&] {
    machine::Machine m(prog, trace, machine::Preset::CPAP, cfg);
    (void)m.run();
  });
  // A >2000-cycle lockstep stall fills any sane ring: the deep recorder
  // must retain its full 128 records.
  EXPECT_EQ(rep.recent.size(), 128u);
}

}  // namespace
}  // namespace hidisc
