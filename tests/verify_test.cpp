// Tests for the separation verifier: every compiler output must verify
// clean; hand-crafted protocol violations must each be caught.
#include <gtest/gtest.h>

#include "compiler/compile.hpp"
#include "compiler/verify.hpp"
#include "isa/assembler.hpp"
#include "workloads/common.hpp"

namespace hidisc::compiler {
namespace {

using isa::Opcode;
using isa::Stream;

TEST(Verify, EveryCompiledWorkloadVerifiesClean) {
  for (const auto& w : workloads::paper_suite(workloads::Scale::Test)) {
    const auto comp = compile(w.program);
    const auto v = verify_separation(comp.separated);
    EXPECT_TRUE(v.ok()) << w.name << ": " << (v.violations.empty()
                                                  ? ""
                                                  : v.violations.front());
  }
  for (const auto& w : workloads::extra_suite(workloads::Scale::Test)) {
    const auto comp = compile(w.program);
    const auto v = verify_separation(comp.separated);
    EXPECT_TRUE(v.ok()) << w.name;
  }
}

isa::Program separated_toy() {
  const auto prog = isa::assemble(R"(
.data
v: .space 800
o: .space 8
.text
_start:
  la   r4, v
  li   r5, 100
loop:
  fld  f2, 0(r4)
  fadd f1, f1, f2
  addi r4, r4, 8
  addi r5, r5, -1
  bne  r5, r0, loop
  fsd  f1, o
  halt
)");
  return separate_streams(prog).separated;
}

TEST(Verify, CleanSeparationPasses) {
  const auto v = verify_separation(separated_toy());
  EXPECT_TRUE(v.ok()) << (v.violations.empty() ? "" : v.violations.front());
}

TEST(Verify, MissingStreamTagIsFlagged) {
  auto prog = separated_toy();
  prog.code[2].ann.stream = Stream::None;
  const auto v = verify_separation(prog);
  ASSERT_FALSE(v.ok());
  EXPECT_NE(v.violations.front().find("missing stream"), std::string::npos);
}

TEST(Verify, MemoryOpOnCpIsFlagged) {
  auto prog = separated_toy();
  for (auto& inst : prog.code)
    if (isa::is_load(inst.op)) inst.ann.stream = Stream::Compute;
  const auto v = verify_separation(prog);
  ASSERT_FALSE(v.ok());
  EXPECT_NE(v.violations.front().find("routed to the CP"),
            std::string::npos);
}

TEST(Verify, FpComputeOnApIsFlagged) {
  auto prog = separated_toy();
  for (auto& inst : prog.code)
    if (inst.op == Opcode::FADD) inst.ann.stream = Stream::Access;
  const auto v = verify_separation(prog);
  EXPECT_FALSE(v.ok());
}

TEST(Verify, QueueSideMisuseIsFlagged) {
  auto prog = isa::assemble("pushldq r1\nhalt\n");
  prog.code[0].ann.stream = Stream::Compute;  // LDQ producer must be AP
  prog.code[1].ann.stream = Stream::Access;
  const auto v = verify_separation(prog);
  ASSERT_FALSE(v.ok());
  EXPECT_NE(v.violations.front().find("access side"), std::string::npos);
}

TEST(Verify, PopBeforePushIsFlagged) {
  auto prog = isa::assemble("popldq r1\npushldq r1\nhalt\n");
  prog.code[0].ann.stream = Stream::Compute;
  prog.code[1].ann.stream = Stream::Access;
  prog.code[2].ann.stream = Stream::Access;
  const auto v = verify_separation(prog);
  ASSERT_FALSE(v.ok());
  bool found = false;
  for (const auto& s : v.violations)
    found |= s.find("pops more than was pushed") != std::string::npos;
  EXPECT_TRUE(found);
}

TEST(Verify, UnboundedQueueGrowthIsFlagged) {
  // A loop that pushes every lap and never pops.
  auto prog = isa::assemble(R"(
.text
_start:
  li r5, 100
loop:
  pushldq r5
  addi r5, r5, -1
  bne r5, r0, loop
  halt
)");
  for (auto& inst : prog.code) inst.ann.stream = Stream::Access;
  const auto v = verify_separation(prog);
  ASSERT_FALSE(v.ok());
  bool found = false;
  for (const auto& s : v.violations)
    found |= s.find("grows without bound") != std::string::npos;
  EXPECT_TRUE(found);
}

TEST(Verify, BalancedLoopPassesBalanceAnalysis) {
  auto prog = isa::assemble(R"(
.text
_start:
  li r5, 100
loop:
  pushldq r5
  popldq r6
  addi r5, r5, -1
  bne r5, r0, loop
  halt
)");
  for (auto& inst : prog.code) inst.ann.stream = Stream::Access;
  prog.code[2].ann.stream = Stream::Compute;  // the pop
  const auto v = verify_separation(prog);
  EXPECT_TRUE(v.ok()) << (v.violations.empty() ? "" : v.violations.front());
}

TEST(Verify, DetachedInsertedPopIsFlagged) {
  auto prog = separated_toy();
  // Find an inserted pop and break its adjacency by clearing the
  // producer's flag.
  for (std::size_t i = 1; i < prog.code.size(); ++i) {
    if (prog.code[i].ann.compiler_inserted &&
        (prog.code[i].op == Opcode::POPLDQF ||
         prog.code[i].op == Opcode::POPLDQ)) {
      prog.code[i - 1].ann.push_ldq = false;
      break;
    }
  }
  const auto v = verify_separation(prog);
  EXPECT_FALSE(v.ok());
}

TEST(Verify, CmasStoreIsFlagged) {
  auto prog = separated_toy();
  for (auto& inst : prog.code)
    if (isa::is_store(inst.op)) {
      inst.ann.in_cmas = true;
      inst.ann.cmas_group = 0;
    }
  const auto v = verify_separation(prog);
  EXPECT_FALSE(v.ok());
}

TEST(Verify, DanglingTriggerIsFlagged) {
  auto prog = separated_toy();
  prog.code[0].ann.is_trigger = true;
  prog.code[0].ann.trigger_group = 5;  // no such group
  const auto v = verify_separation(prog);
  EXPECT_FALSE(v.ok());
}

}  // namespace
}  // namespace hidisc::compiler
