// Tests for the separation verifier: every compiler output must verify
// clean; hand-crafted protocol violations must each be caught.
#include <gtest/gtest.h>

#include <vector>

#include "compiler/compile.hpp"
#include "compiler/verify.hpp"
#include "isa/assembler.hpp"
#include "workloads/common.hpp"

namespace hidisc::compiler {
namespace {

using isa::Opcode;
using isa::Stream;

TEST(Verify, EveryCompiledWorkloadVerifiesClean) {
  for (const auto& w : workloads::paper_suite(workloads::Scale::Test)) {
    const auto comp = compile(w.program);
    const auto v = verify_separation(comp.separated);
    EXPECT_TRUE(v.ok()) << w.name << ": " << (v.violations.empty()
                                                  ? ""
                                                  : v.violations.front());
  }
  for (const auto& w : workloads::extra_suite(workloads::Scale::Test)) {
    const auto comp = compile(w.program);
    const auto v = verify_separation(comp.separated);
    EXPECT_TRUE(v.ok()) << w.name;
  }
}

isa::Program separated_toy() {
  const auto prog = isa::assemble(R"(
.data
v: .space 800
o: .space 8
.text
_start:
  la   r4, v
  li   r5, 100
loop:
  fld  f2, 0(r4)
  fadd f1, f1, f2
  addi r4, r4, 8
  addi r5, r5, -1
  bne  r5, r0, loop
  fsd  f1, o
  halt
)");
  return separate_streams(prog).separated;
}

TEST(Verify, CleanSeparationPasses) {
  const auto v = verify_separation(separated_toy());
  EXPECT_TRUE(v.ok()) << (v.violations.empty() ? "" : v.violations.front());
}

TEST(Verify, MissingStreamTagIsFlagged) {
  auto prog = separated_toy();
  prog.code[2].ann.stream = Stream::None;
  const auto v = verify_separation(prog);
  ASSERT_FALSE(v.ok());
  EXPECT_NE(v.violations.front().find("missing stream"), std::string::npos);
}

TEST(Verify, MemoryOpOnCpIsFlagged) {
  auto prog = separated_toy();
  for (auto& inst : prog.code)
    if (isa::is_load(inst.op)) inst.ann.stream = Stream::Compute;
  const auto v = verify_separation(prog);
  ASSERT_FALSE(v.ok());
  EXPECT_NE(v.violations.front().find("routed to the CP"),
            std::string::npos);
}

TEST(Verify, FpComputeOnApIsFlagged) {
  auto prog = separated_toy();
  for (auto& inst : prog.code)
    if (inst.op == Opcode::FADD) inst.ann.stream = Stream::Access;
  const auto v = verify_separation(prog);
  EXPECT_FALSE(v.ok());
}

TEST(Verify, QueueSideMisuseIsFlagged) {
  auto prog = isa::assemble("pushldq r1\nhalt\n");
  prog.code[0].ann.stream = Stream::Compute;  // LDQ producer must be AP
  prog.code[1].ann.stream = Stream::Access;
  const auto v = verify_separation(prog);
  ASSERT_FALSE(v.ok());
  EXPECT_NE(v.violations.front().find("access side"), std::string::npos);
}

TEST(Verify, PopBeforePushIsFlagged) {
  auto prog = isa::assemble("popldq r1\npushldq r1\nhalt\n");
  prog.code[0].ann.stream = Stream::Compute;
  prog.code[1].ann.stream = Stream::Access;
  prog.code[2].ann.stream = Stream::Access;
  const auto v = verify_separation(prog);
  ASSERT_FALSE(v.ok());
  bool found = false;
  for (const auto& s : v.violations)
    found |= s.find("pops more than was pushed") != std::string::npos;
  EXPECT_TRUE(found);
}

TEST(Verify, CountedBatchPastCapacityIsFlagged) {
  // 100 pushes with no pops: a bounded batch, but past the 32-entry queue
  // capacity the in-order front end deadlocks (see the decoupled machine
  // test SequentialBatchBeyondQueueCapacityDeadlocks).
  auto prog = isa::assemble(R"(
.text
_start:
  li r5, 100
loop:
  pushldq r5
  addi r5, r5, -1
  bne r5, r0, loop
  halt
)");
  for (auto& inst : prog.code) inst.ann.stream = Stream::Access;
  const auto v = verify_separation(prog);
  ASSERT_FALSE(v.ok());
  bool found = false;
  for (const auto& s : v.violations)
    found |= s.find("exceeds the 32-entry queue capacity") !=
             std::string::npos;
  EXPECT_TRUE(found) << v.violations.front();
}

TEST(Verify, CountedBatchWithinCapacityPasses) {
  // A 20-entry batch fits the queue; the counted-loop refinement must
  // track the exact trip count instead of widening to infinity.
  auto prog = isa::assemble(R"(
.text
_start:
  li r5, 20
loop:
  pushldq r5
  addi r5, r5, -1
  bne r5, r0, loop
  li r6, 20
drain:
  popldq r7
  addi r6, r6, -1
  bne r6, r0, drain
  halt
)");
  for (auto& inst : prog.code) inst.ann.stream = Stream::Access;
  for (auto& inst : prog.code)
    if (inst.op == isa::Opcode::POPLDQ) inst.ann.stream = Stream::Compute;
  const auto v = verify_separation(prog);
  EXPECT_TRUE(v.ok()) << (v.violations.empty() ? "" : v.violations.front());
}

TEST(Verify, UnboundedQueueGrowthIsFlagged) {
  // The loop branches on a register with no statically known trip count,
  // so the occupancy widens to infinity.
  auto prog = isa::assemble(R"(
.text
_start:
  li r5, 100
loop:
  pushldq r5
  addi r5, r5, -1
  bne r6, r0, loop
  halt
)");
  for (auto& inst : prog.code) inst.ann.stream = Stream::Access;
  const auto v = verify_separation(prog);
  ASSERT_FALSE(v.ok());
  bool found = false;
  for (const auto& s : v.violations)
    found |= s.find("grows without bound") != std::string::npos;
  EXPECT_TRUE(found) << v.violations.front();
}

TEST(Verify, EodGuardedConsumerLoopVerifies) {
  // The paper's Figure-3 protocol: AP pushes a batch and EOD, CP pops in
  // a loop closed by BEOD.  Statically a lap of that loop pops more than
  // it pushes; dynamically the EOD token bounds it, so the verifier must
  // accept what the machines run cleanly (the verify/machine agreement
  // contract checked by the fuzz oracle).
  auto prog = isa::assemble(R"(
.data
vals: .space 800
.text
_start:
  la   r4, vals
  li   r5, 20
loop:
  ld   r6, 0(r4)
  pushldq r6
  addi r4, r4, 8
  addi r5, r5, -1
  bne  r5, r0, loop
  puteod
cp_entry:
  popldq r8
  add  r9, r9, r8
  beod done
  j    cp_entry
done:
  pushsdq r9
  popsdq r10
  sd   r10, 0(r4)
  halt
)");
  std::vector<Stream> tags(prog.code.size(), Stream::Access);
  const auto cp_entry = prog.code_index("cp_entry");
  const auto done = prog.code_index("done");
  for (std::int32_t i = cp_entry; i <= done; ++i) tags[i] = Stream::Compute;
  for (std::size_t i = 0; i < prog.code.size(); ++i)
    prog.code[i].ann.stream = tags[i];
  const auto v = verify_separation(prog);
  EXPECT_TRUE(v.ok()) << (v.violations.empty() ? "" : v.violations.front());
}

TEST(Verify, BalancedLoopPassesBalanceAnalysis) {
  auto prog = isa::assemble(R"(
.text
_start:
  li r5, 100
loop:
  pushldq r5
  popldq r6
  addi r5, r5, -1
  bne r5, r0, loop
  halt
)");
  for (auto& inst : prog.code) inst.ann.stream = Stream::Access;
  prog.code[2].ann.stream = Stream::Compute;  // the pop
  const auto v = verify_separation(prog);
  EXPECT_TRUE(v.ok()) << (v.violations.empty() ? "" : v.violations.front());
}

TEST(Verify, DetachedInsertedPopIsFlagged) {
  auto prog = separated_toy();
  // Find an inserted pop and break its adjacency by clearing the
  // producer's flag.
  for (std::size_t i = 1; i < prog.code.size(); ++i) {
    if (prog.code[i].ann.compiler_inserted &&
        (prog.code[i].op == Opcode::POPLDQF ||
         prog.code[i].op == Opcode::POPLDQ)) {
      prog.code[i - 1].ann.push_ldq = false;
      break;
    }
  }
  const auto v = verify_separation(prog);
  EXPECT_FALSE(v.ok());
}

TEST(Verify, CmasStoreIsFlagged) {
  auto prog = separated_toy();
  for (auto& inst : prog.code)
    if (isa::is_store(inst.op)) {
      inst.ann.in_cmas = true;
      inst.ann.cmas_group = 0;
    }
  const auto v = verify_separation(prog);
  EXPECT_FALSE(v.ok());
}

TEST(Verify, DanglingTriggerIsFlagged) {
  auto prog = separated_toy();
  prog.code[0].ann.is_trigger = true;
  prog.code[0].ann.trigger_group = 5;  // no such group
  const auto v = verify_separation(prog);
  EXPECT_FALSE(v.ok());
}

}  // namespace
}  // namespace hidisc::compiler
