// Unit tests for the hiserve wire protocol: frame round-trips, the
// incremental decoder's handling of truncated / corrupt / oversize
// input, kv payload escaping, CellResult wire completeness, and a
// splitmix64-seeded fuzz round-trip (random payloads, random chunk
// boundaries, random corruptions) reusing the fuzz subsystem's seed
// derivation so failures replay from a campaign seed.
#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "fuzz/campaign.hpp"
#include "lab/serialize.hpp"
#include "serve/protocol.hpp"
#include "serve/worker.hpp"

namespace {

using namespace hidisc;
using namespace hidisc::serve;

Frame frame(MsgType t, std::string payload) {
  Frame f;
  f.type = t;
  f.payload = std::move(payload);
  return f;
}

// --- framing ---------------------------------------------------------------

TEST(ServeProtocol, FrameRoundTrip) {
  const Frame in = frame(MsgType::SubmitPlan, "plan fig8\nscale test\n");
  FrameDecoder dec;
  dec.feed(encode_frame(in));
  const auto out = dec.next();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, in);
  EXPECT_FALSE(dec.next().has_value());
  EXPECT_EQ(dec.buffered(), 0u);
}

TEST(ServeProtocol, EmptyPayloadRoundTrip) {
  FrameDecoder dec;
  dec.feed(encode_frame(frame(MsgType::GetStats, "")));
  const auto out = dec.next();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->type, MsgType::GetStats);
  EXPECT_TRUE(out->payload.empty());
}

TEST(ServeProtocol, BackToBackFramesOneFeed) {
  const Frame a = frame(MsgType::Hello, "proto 1\n");
  const Frame b = frame(MsgType::PlanDone, "cells 32\n");
  FrameDecoder dec;
  dec.feed(encode_frame(a) + encode_frame(b));
  EXPECT_EQ(dec.next(), a);
  EXPECT_EQ(dec.next(), b);
  EXPECT_FALSE(dec.next().has_value());
}

TEST(ServeProtocol, TruncatedFrameIsNotAFrame) {
  // Every proper prefix of the wire bytes must yield "need more", never a
  // frame and never an exception: truncation is a transport condition
  // (peer died mid-send), not corruption.
  const std::string wire =
      encode_frame(frame(MsgType::CellDone, "cell 3\nerror \n"));
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    FrameDecoder dec;
    dec.feed(wire.data(), cut);
    EXPECT_FALSE(dec.next().has_value()) << "prefix length " << cut;
    EXPECT_EQ(dec.buffered(), cut);
  }
}

TEST(ServeProtocol, ByteAtATimeDelivery) {
  const Frame in = frame(MsgType::JobDone, "job 7\nkey abc\n");
  const std::string wire = encode_frame(in);
  FrameDecoder dec;
  for (std::size_t i = 0; i + 1 < wire.size(); ++i) {
    dec.feed(wire.data() + i, 1);
    EXPECT_FALSE(dec.next().has_value());
  }
  dec.feed(wire.data() + wire.size() - 1, 1);
  EXPECT_EQ(dec.next(), in);
}

TEST(ServeProtocol, BadMagicThrowsAndPoisons) {
  std::string wire = encode_frame(frame(MsgType::Hello, "x 1\n"));
  wire[0] ^= 0xFF;
  FrameDecoder dec;
  dec.feed(wire);
  EXPECT_THROW((void)dec.next(), ProtocolError);
  // Poisoned: even a pristine frame can't revive the decoder, because the
  // stream offset is untrustworthy after framing corruption.  (feed() on
  // a poisoned decoder rethrows too.)
  EXPECT_THROW(
      {
        dec.feed(encode_frame(frame(MsgType::Hello, "x 1\n")));
        (void)dec.next();
      },
      ProtocolError);
}

TEST(ServeProtocol, WrongVersionThrows) {
  std::string wire = encode_frame(frame(MsgType::Hello, ""));
  wire[4] ^= 0x01;  // version field, little-endian low byte
  FrameDecoder dec;
  dec.feed(wire);
  EXPECT_THROW((void)dec.next(), ProtocolError);
}

TEST(ServeProtocol, OversizePayloadLengthThrows) {
  std::string wire = encode_frame(frame(MsgType::Hello, "abc"));
  const std::uint32_t huge = kMaxPayload + 1;
  std::memcpy(&wire[8], &huge, sizeof huge);
  FrameDecoder dec;
  dec.feed(wire);
  EXPECT_THROW((void)dec.next(), ProtocolError);
}

TEST(ServeProtocol, PayloadBitFlipFailsChecksum) {
  const std::string payload = "plan fig8\nscale paper\n";
  std::string wire = encode_frame(frame(MsgType::SubmitPlan, payload));
  wire[kHeaderSize + 4] ^= 0x20;
  FrameDecoder dec;
  dec.feed(wire);
  EXPECT_THROW((void)dec.next(), ProtocolError);
}

TEST(ServeProtocol, ChecksumFieldBitFlipThrows) {
  std::string wire = encode_frame(frame(MsgType::SubmitPlan, "plan fig8\n"));
  wire[12] ^= 0x01;  // first checksum byte
  FrameDecoder dec;
  dec.feed(wire);
  EXPECT_THROW((void)dec.next(), ProtocolError);
}

// --- kv payloads -----------------------------------------------------------

TEST(ServeProtocol, KvEscapeRoundTrip) {
  const std::vector<std::string> cases = {
      "",      "plain",           "with space",
      "tab\t", "newline\nin it",  "backslash \\ and \\n literal",
      "\n",    "\\",              "\\\n\\\n",
  };
  for (const auto& v : cases)
    EXPECT_EQ(kv_unescape(kv_escape(v)), v) << "value: " << v;
}

TEST(ServeProtocol, KvEncodeParseRoundTrip) {
  KvMap kv;
  kv["plan"] = "fig8";
  kv["error"] = "line one\nline two\\with backslash";
  kv["empty"] = "";
  EXPECT_EQ(kv_parse(kv_encode(kv)), kv);
}

TEST(ServeProtocol, KvParseRejectsMalformedLines) {
  EXPECT_THROW((void)kv_parse("noseparator\n"), ProtocolError);
  EXPECT_THROW((void)kv_parse(" emptyname\n"), ProtocolError);
}

TEST(ServeProtocol, PlanRequestRoundTrip) {
  PlanRequest req;
  req.plan = "fig10";
  req.scale = "test";
  req.watchdog = 12345;
  req.lockstep = true;
  req.refresh = true;
  const PlanRequest back = PlanRequest::from_kv(req.to_kv());
  EXPECT_EQ(back.plan, req.plan);
  EXPECT_EQ(back.scale, req.scale);
  EXPECT_EQ(back.watchdog, req.watchdog);
  EXPECT_EQ(back.lockstep, req.lockstep);
  EXPECT_EQ(back.refresh, req.refresh);
}

// --- CellResult wire completeness ------------------------------------------

lab::CellResult sample_ok_result() {
  lab::CellResult r;
  r.result.cycles = 123456;
  r.result.instructions = 98765;
  r.result.ipc = 0.8;
  r.key = "0123456789abcdef0123456789abcdef";
  r.orig_dynamic_instructions = 4242;
  r.from_cache = true;
  r.wall_ms = 17.25;
  r.sim_cycles_per_sec = 1.5e6;
  return r;
}

TEST(ServeProtocol, CellResultRoundTripOk) {
  const lab::CellResult in = sample_ok_result();
  const lab::CellResult out = cell_result_from_kv(cell_result_to_kv(in));
  EXPECT_TRUE(lab::results_identical(in.result, out.result));
  EXPECT_EQ(out.key, in.key);
  EXPECT_EQ(out.orig_dynamic_instructions, in.orig_dynamic_instructions);
  EXPECT_EQ(out.from_cache, in.from_cache);
  EXPECT_DOUBLE_EQ(out.wall_ms, in.wall_ms);
  EXPECT_TRUE(out.ok());
}

TEST(ServeProtocol, CellResultRoundTripError) {
  lab::CellResult in;
  in.error = "watchdog: no retirement\nfor 100 cycles";
  in.error_class = "deadlock:memory-wait";
  in.diagnostic_json = "{\"kind\": \"deadlock\",\n \"cause\": \"x\"}";
  const lab::CellResult out = cell_result_from_kv(cell_result_to_kv(in));
  EXPECT_FALSE(out.ok());
  EXPECT_EQ(out.error, in.error);
  EXPECT_EQ(out.error_class, in.error_class);
  EXPECT_EQ(out.diagnostic_json, in.diagnostic_json);
}

TEST(ServeProtocol, CellResultMissingFieldIsProtocolError) {
  // Same required-field rule as the result cache: an ok cell whose Result
  // encoding lost a field must fail loudly, not decode as zeros.
  KvMap kv = cell_result_to_kv(sample_ok_result());
  kv.erase("r.cycles");
  EXPECT_THROW((void)cell_result_from_kv(kv), ProtocolError);
}

// --- fuzz round-trip -------------------------------------------------------

// Random printable-ish payloads through encode -> chunked feed -> decode;
// then a corruption pass: one random byte flipped anywhere in the wire
// image must either throw ProtocolError, yield nothing yet (when the flip
// lands in the length field and the decoder now waits for more), or —
// never — produce a frame equal to the original with a corrupt payload.
TEST(ServeProtocolFuzz, RoundTripAndCorruption) {
  constexpr std::uint64_t seed_base = 20260808;  // fixed campaign seed
  constexpr int kRuns = 200;
  for (int run = 0; run < kRuns; ++run) {
    std::mt19937_64 rng(fuzz::derive_seed(seed_base, run));
    // Build a random frame.
    Frame in;
    in.type = static_cast<MsgType>(1 + rng() % 12);
    const std::size_t len = rng() % 512;
    in.payload.reserve(len);
    for (std::size_t i = 0; i < len; ++i)
      in.payload.push_back(static_cast<char>(rng() % 256));
    const std::string wire = encode_frame(in);

    // Clean round-trip under random chunking.
    {
      FrameDecoder dec;
      std::size_t off = 0;
      std::optional<Frame> got;
      while (off < wire.size()) {
        const std::size_t chunk =
            std::min<std::size_t>(1 + rng() % 64, wire.size() - off);
        dec.feed(wire.data() + off, chunk);
        off += chunk;
        if (auto f = dec.next()) got = std::move(f);
      }
      ASSERT_TRUE(got.has_value()) << "run " << run;
      EXPECT_EQ(*got, in) << "run " << run;
    }

    // Single-byte corruption must never round-trip silently.
    {
      std::string bad = wire;
      const std::size_t pos = rng() % bad.size();
      char flip;
      do {
        flip = static_cast<char>(rng() % 256);
      } while (flip == bad[pos]);
      bad[pos] = flip;
      FrameDecoder dec;
      try {
        dec.feed(bad);
        auto f = dec.next();
        // A flip in the length field may leave the decoder waiting for
        // more input (nullopt) — acceptable.  A decoded frame identical
        // to the original would mean the corruption went undetected.
        if (f.has_value()) EXPECT_NE(*f, in) << "run " << run;
      } catch (const ProtocolError&) {
        // detected — the expected common case
      }
    }
  }
}

// --- plan materialization --------------------------------------------------

TEST(ServeWorker, MaterializePlanMatchesRegistry) {
  PlanRequest req;
  req.plan = "fig10";
  req.scale = "test";
  const lab::ExperimentPlan plan = materialize_plan(req);
  const lab::ExperimentPlan direct =
      lab::make_plan("fig10", workloads::Scale::Test);
  ASSERT_EQ(plan.cells.size(), direct.cells.size());
}

TEST(ServeWorker, MaterializePlanAppliesOverrides) {
  PlanRequest req;
  req.plan = "fig10";
  req.scale = "test";
  req.watchdog = 777;
  req.lockstep = true;
  const lab::ExperimentPlan plan = materialize_plan(req);
  for (const auto& cell : plan.cells) {
    EXPECT_EQ(cell.config.watchdog_cycles, 777u);
    EXPECT_EQ(cell.config.scheduler, machine::SchedulerKind::Lockstep);
  }
}

TEST(ServeWorker, MaterializePlanUnknownNameThrows) {
  PlanRequest req;
  req.plan = "no-such-plan";
  EXPECT_THROW((void)materialize_plan(req), std::out_of_range);
}

}  // namespace
