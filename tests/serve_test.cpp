// Unit tests for the hiserve wire protocol: frame round-trips, the
// incremental decoder's handling of truncated / corrupt / oversize
// input, kv payload escaping, CellResult wire completeness, and a
// splitmix64-seeded fuzz round-trip (random payloads, random chunk
// boundaries, random corruptions) reusing the fuzz subsystem's seed
// derivation so failures replay from a campaign seed.
#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "fuzz/campaign.hpp"
#include "lab/serialize.hpp"
#include "serve/chaos.hpp"
#include "serve/protocol.hpp"
#include "serve/transport.hpp"
#include "serve/worker.hpp"

namespace {

using namespace hidisc;
using namespace hidisc::serve;

Frame frame(MsgType t, std::string payload) {
  Frame f;
  f.type = t;
  f.payload = std::move(payload);
  return f;
}

// --- framing ---------------------------------------------------------------

TEST(ServeProtocol, FrameRoundTrip) {
  const Frame in = frame(MsgType::SubmitPlan, "plan fig8\nscale test\n");
  FrameDecoder dec;
  dec.feed(encode_frame(in));
  const auto out = dec.next();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, in);
  EXPECT_FALSE(dec.next().has_value());
  EXPECT_EQ(dec.buffered(), 0u);
}

TEST(ServeProtocol, EmptyPayloadRoundTrip) {
  FrameDecoder dec;
  dec.feed(encode_frame(frame(MsgType::GetStats, "")));
  const auto out = dec.next();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->type, MsgType::GetStats);
  EXPECT_TRUE(out->payload.empty());
}

TEST(ServeProtocol, BackToBackFramesOneFeed) {
  const Frame a = frame(MsgType::Hello, "proto 1\n");
  const Frame b = frame(MsgType::PlanDone, "cells 32\n");
  FrameDecoder dec;
  dec.feed(encode_frame(a) + encode_frame(b));
  EXPECT_EQ(dec.next(), a);
  EXPECT_EQ(dec.next(), b);
  EXPECT_FALSE(dec.next().has_value());
}

TEST(ServeProtocol, TruncatedFrameIsNotAFrame) {
  // Every proper prefix of the wire bytes must yield "need more", never a
  // frame and never an exception: truncation is a transport condition
  // (peer died mid-send), not corruption.
  const std::string wire =
      encode_frame(frame(MsgType::CellDone, "cell 3\nerror \n"));
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    FrameDecoder dec;
    dec.feed(wire.data(), cut);
    EXPECT_FALSE(dec.next().has_value()) << "prefix length " << cut;
    EXPECT_EQ(dec.buffered(), cut);
  }
}

TEST(ServeProtocol, ByteAtATimeDelivery) {
  const Frame in = frame(MsgType::JobDone, "job 7\nkey abc\n");
  const std::string wire = encode_frame(in);
  FrameDecoder dec;
  for (std::size_t i = 0; i + 1 < wire.size(); ++i) {
    dec.feed(wire.data() + i, 1);
    EXPECT_FALSE(dec.next().has_value());
  }
  dec.feed(wire.data() + wire.size() - 1, 1);
  EXPECT_EQ(dec.next(), in);
}

TEST(ServeProtocol, BadMagicThrowsAndPoisons) {
  std::string wire = encode_frame(frame(MsgType::Hello, "x 1\n"));
  wire[0] ^= 0xFF;
  FrameDecoder dec;
  dec.feed(wire);
  EXPECT_THROW((void)dec.next(), ProtocolError);
  // Poisoned: even a pristine frame can't revive the decoder, because the
  // stream offset is untrustworthy after framing corruption.  (feed() on
  // a poisoned decoder rethrows too.)
  EXPECT_THROW(
      {
        dec.feed(encode_frame(frame(MsgType::Hello, "x 1\n")));
        (void)dec.next();
      },
      ProtocolError);
}

TEST(ServeProtocol, WrongVersionThrows) {
  std::string wire = encode_frame(frame(MsgType::Hello, ""));
  wire[4] ^= 0x01;  // version field, little-endian low byte
  FrameDecoder dec;
  dec.feed(wire);
  EXPECT_THROW((void)dec.next(), ProtocolError);
}

TEST(ServeProtocol, OversizePayloadLengthThrows) {
  std::string wire = encode_frame(frame(MsgType::Hello, "abc"));
  const std::uint32_t huge = kMaxPayload + 1;
  std::memcpy(&wire[8], &huge, sizeof huge);
  FrameDecoder dec;
  dec.feed(wire);
  EXPECT_THROW((void)dec.next(), ProtocolError);
}

TEST(ServeProtocol, PayloadBitFlipFailsChecksum) {
  const std::string payload = "plan fig8\nscale paper\n";
  std::string wire = encode_frame(frame(MsgType::SubmitPlan, payload));
  wire[kHeaderSize + 4] ^= 0x20;
  FrameDecoder dec;
  dec.feed(wire);
  EXPECT_THROW((void)dec.next(), ProtocolError);
}

TEST(ServeProtocol, ChecksumFieldBitFlipThrows) {
  std::string wire = encode_frame(frame(MsgType::SubmitPlan, "plan fig8\n"));
  wire[12] ^= 0x01;  // first checksum byte
  FrameDecoder dec;
  dec.feed(wire);
  EXPECT_THROW((void)dec.next(), ProtocolError);
}

// --- kv payloads -----------------------------------------------------------

TEST(ServeProtocol, KvEscapeRoundTrip) {
  const std::vector<std::string> cases = {
      "",      "plain",           "with space",
      "tab\t", "newline\nin it",  "backslash \\ and \\n literal",
      "\n",    "\\",              "\\\n\\\n",
  };
  for (const auto& v : cases)
    EXPECT_EQ(kv_unescape(kv_escape(v)), v) << "value: " << v;
}

TEST(ServeProtocol, KvEncodeParseRoundTrip) {
  KvMap kv;
  kv["plan"] = "fig8";
  kv["error"] = "line one\nline two\\with backslash";
  kv["empty"] = "";
  EXPECT_EQ(kv_parse(kv_encode(kv)), kv);
}

TEST(ServeProtocol, KvParseRejectsMalformedLines) {
  EXPECT_THROW((void)kv_parse("noseparator\n"), ProtocolError);
  EXPECT_THROW((void)kv_parse(" emptyname\n"), ProtocolError);
}

TEST(ServeProtocol, PlanRequestRoundTrip) {
  PlanRequest req;
  req.plan = "fig10";
  req.scale = "test";
  req.watchdog = 12345;
  req.lockstep = true;
  req.refresh = true;
  const PlanRequest back = PlanRequest::from_kv(req.to_kv());
  EXPECT_EQ(back.plan, req.plan);
  EXPECT_EQ(back.scale, req.scale);
  EXPECT_EQ(back.watchdog, req.watchdog);
  EXPECT_EQ(back.lockstep, req.lockstep);
  EXPECT_EQ(back.refresh, req.refresh);
}

// --- CellResult wire completeness ------------------------------------------

lab::CellResult sample_ok_result() {
  lab::CellResult r;
  r.result.cycles = 123456;
  r.result.instructions = 98765;
  r.result.ipc = 0.8;
  r.key = "0123456789abcdef0123456789abcdef";
  r.orig_dynamic_instructions = 4242;
  r.from_cache = true;
  r.wall_ms = 17.25;
  r.sim_cycles_per_sec = 1.5e6;
  return r;
}

TEST(ServeProtocol, CellResultRoundTripOk) {
  const lab::CellResult in = sample_ok_result();
  const lab::CellResult out = cell_result_from_kv(cell_result_to_kv(in));
  EXPECT_TRUE(lab::results_identical(in.result, out.result));
  EXPECT_EQ(out.key, in.key);
  EXPECT_EQ(out.orig_dynamic_instructions, in.orig_dynamic_instructions);
  EXPECT_EQ(out.from_cache, in.from_cache);
  EXPECT_DOUBLE_EQ(out.wall_ms, in.wall_ms);
  EXPECT_TRUE(out.ok());
}

TEST(ServeProtocol, CellResultRoundTripError) {
  lab::CellResult in;
  in.error = "watchdog: no retirement\nfor 100 cycles";
  in.error_class = "deadlock:memory-wait";
  in.diagnostic_json = "{\"kind\": \"deadlock\",\n \"cause\": \"x\"}";
  const lab::CellResult out = cell_result_from_kv(cell_result_to_kv(in));
  EXPECT_FALSE(out.ok());
  EXPECT_EQ(out.error, in.error);
  EXPECT_EQ(out.error_class, in.error_class);
  EXPECT_EQ(out.diagnostic_json, in.diagnostic_json);
}

TEST(ServeProtocol, CellResultMissingFieldIsProtocolError) {
  // Same required-field rule as the result cache: an ok cell whose Result
  // encoding lost a field must fail loudly, not decode as zeros.
  KvMap kv = cell_result_to_kv(sample_ok_result());
  kv.erase("r.cycles");
  EXPECT_THROW((void)cell_result_from_kv(kv), ProtocolError);
}

// --- fuzz round-trip -------------------------------------------------------

// Random printable-ish payloads through encode -> chunked feed -> decode;
// then a corruption pass: one random byte flipped anywhere in the wire
// image must either throw ProtocolError, yield nothing yet (when the flip
// lands in the length field and the decoder now waits for more), or —
// never — produce a frame equal to the original with a corrupt payload.
TEST(ServeProtocolFuzz, RoundTripAndCorruption) {
  constexpr std::uint64_t seed_base = 20260808;  // fixed campaign seed
  constexpr int kRuns = 200;
  for (int run = 0; run < kRuns; ++run) {
    std::mt19937_64 rng(fuzz::derive_seed(seed_base, run));
    // Build a random frame.
    Frame in;
    in.type = static_cast<MsgType>(1 + rng() % 12);
    const std::size_t len = rng() % 512;
    in.payload.reserve(len);
    for (std::size_t i = 0; i < len; ++i)
      in.payload.push_back(static_cast<char>(rng() % 256));
    const std::string wire = encode_frame(in);

    // Clean round-trip under random chunking.
    {
      FrameDecoder dec;
      std::size_t off = 0;
      std::optional<Frame> got;
      while (off < wire.size()) {
        const std::size_t chunk =
            std::min<std::size_t>(1 + rng() % 64, wire.size() - off);
        dec.feed(wire.data() + off, chunk);
        off += chunk;
        if (auto f = dec.next()) got = std::move(f);
      }
      ASSERT_TRUE(got.has_value()) << "run " << run;
      EXPECT_EQ(*got, in) << "run " << run;
    }

    // Single-byte corruption must never round-trip silently.
    {
      std::string bad = wire;
      const std::size_t pos = rng() % bad.size();
      char flip;
      do {
        flip = static_cast<char>(rng() % 256);
      } while (flip == bad[pos]);
      bad[pos] = flip;
      FrameDecoder dec;
      try {
        dec.feed(bad);
        auto f = dec.next();
        // A flip in the length field may leave the decoder waiting for
        // more input (nullopt) — acceptable.  A decoded frame identical
        // to the original would mean the corruption went undetected.
        if (f.has_value()) EXPECT_NE(*f, in) << "run " << run;
      } catch (const ProtocolError&) {
        // detected — the expected common case
      }
    }
  }
}

// --- plan materialization --------------------------------------------------

TEST(ServeWorker, MaterializePlanMatchesRegistry) {
  PlanRequest req;
  req.plan = "fig10";
  req.scale = "test";
  const lab::ExperimentPlan plan = materialize_plan(req);
  const lab::ExperimentPlan direct =
      lab::make_plan("fig10", workloads::Scale::Test);
  ASSERT_EQ(plan.cells.size(), direct.cells.size());
}

TEST(ServeWorker, MaterializePlanAppliesOverrides) {
  PlanRequest req;
  req.plan = "fig10";
  req.scale = "test";
  req.watchdog = 777;
  req.lockstep = true;
  const lab::ExperimentPlan plan = materialize_plan(req);
  for (const auto& cell : plan.cells) {
    EXPECT_EQ(cell.config.watchdog_cycles, 777u);
    EXPECT_EQ(cell.config.scheduler, machine::SchedulerKind::Lockstep);
  }
}

TEST(ServeWorker, MaterializePlanUnknownNameThrows) {
  PlanRequest req;
  req.plan = "no-such-plan";
  EXPECT_THROW((void)materialize_plan(req), std::out_of_range);
}

// --- chaos spec parsing ----------------------------------------------------

TEST(ServeChaos, ParseSpecFull) {
  const ChaosSpec s =
      parse_chaos_spec("7:drop@4x2,corrupt@1,split,stall@3=15,window=32");
  EXPECT_EQ(s.seed, 7u);
  EXPECT_TRUE(s.drop);
  EXPECT_EQ(s.drop_at, 4u);
  EXPECT_EQ(s.drop_budget, 2u);
  EXPECT_TRUE(s.corrupt);
  EXPECT_EQ(s.corrupt_at, 1u);
  EXPECT_EQ(s.corrupt_budget, 1u);
  EXPECT_TRUE(s.split);
  EXPECT_TRUE(s.stall);
  EXPECT_EQ(s.stall_at, 3u);
  EXPECT_EQ(s.stall_ms, 15);
  EXPECT_EQ(s.window, 32u);
}

TEST(ServeChaos, ParseSpecDefaults) {
  const ChaosSpec s = parse_chaos_spec("42:drop");
  EXPECT_EQ(s.seed, 42u);
  EXPECT_TRUE(s.drop);
  EXPECT_EQ(s.drop_at, 0u);  // derived per connection
  EXPECT_EQ(s.drop_budget, 1u);
  EXPECT_FALSE(s.corrupt);
  EXPECT_FALSE(s.split);
  EXPECT_FALSE(s.stall);
  EXPECT_EQ(s.window, 8u);
}

TEST(ServeChaos, ParseSpecMalformedThrows) {
  EXPECT_THROW((void)parse_chaos_spec("drop"), std::runtime_error);
  EXPECT_THROW((void)parse_chaos_spec("x:drop"), std::runtime_error);
  EXPECT_THROW((void)parse_chaos_spec("1:"), std::runtime_error);
  EXPECT_THROW((void)parse_chaos_spec("1:bogus"), std::runtime_error);
  EXPECT_THROW((void)parse_chaos_spec("1:drop@0"), std::runtime_error);
  EXPECT_THROW((void)parse_chaos_spec("1:dropx0"), std::runtime_error);
  EXPECT_THROW((void)parse_chaos_spec("1:window"), std::runtime_error);
}

TEST(ServeChaos, EnvFallback) {
  ::setenv("HIDISC_CHAOS_NET", "5:drop", 1);
  const auto from_env = chaos_spec_from("");
  ASSERT_TRUE(from_env.has_value());
  EXPECT_EQ(from_env->seed, 5u);
  EXPECT_TRUE(from_env->drop);
  // The CLI value wins over the environment.
  const auto from_cli = chaos_spec_from("6:corrupt");
  ASSERT_TRUE(from_cli.has_value());
  EXPECT_EQ(from_cli->seed, 6u);
  EXPECT_FALSE(from_cli->drop);
  ::unsetenv("HIDISC_CHAOS_NET");
  EXPECT_FALSE(chaos_spec_from("").has_value());
}

// --- fault schedules -------------------------------------------------------

TEST(ServeChaos, SchedulesAreDeterministicFromSeed) {
  const ChaosSpec spec =
      parse_chaos_spec("99:drop,corrupt,stall,split,window=16");
  FaultPlan a(spec), b(spec);
  std::vector<std::uint64_t> drop_draws;
  for (int i = 0; i < 8; ++i) {
    const FaultSchedule sa = a.next_schedule();
    const FaultSchedule sb = b.next_schedule();
    EXPECT_EQ(sa.drop_at, sb.drop_at) << "conn " << i;
    EXPECT_EQ(sa.corrupt_at, sb.corrupt_at) << "conn " << i;
    EXPECT_EQ(sa.corrupt_pos, sb.corrupt_pos) << "conn " << i;
    EXPECT_EQ(sa.corrupt_xor, sb.corrupt_xor) << "conn " << i;
    EXPECT_EQ(sa.split_seed, sb.split_seed) << "conn " << i;
    EXPECT_EQ(sa.stall_at, sb.stall_at) << "conn " << i;
    EXPECT_TRUE(sa.split);
    EXPECT_NE(sa.corrupt_xor, 0);  // a zero xor would be a silent no-op
    EXPECT_GE(sa.drop_at, 1u);
    EXPECT_LE(sa.drop_at, 16u);
    drop_draws.push_back(sa.drop_at);
  }
  // Different connection ordinals draw different positions (that is the
  // point of deriving from (seed, ordinal), not seed alone).
  const bool all_same = std::all_of(
      drop_draws.begin(), drop_draws.end(),
      [&](std::uint64_t d) { return d == drop_draws.front(); });
  EXPECT_FALSE(all_same);
}

TEST(ServeChaos, PinnedPositionsOverrideDerivation) {
  const ChaosSpec spec = parse_chaos_spec("3:drop@9,corrupt@2,stall@5=1");
  FaultPlan plan(spec);
  for (int i = 0; i < 4; ++i) {
    const FaultSchedule s = plan.next_schedule();
    EXPECT_EQ(s.drop_at, 9u);
    EXPECT_EQ(s.corrupt_at, 2u);
    EXPECT_EQ(s.stall_at, 5u);
  }
}

TEST(ServeChaos, BudgetsAreProcessGlobal) {
  FaultPlan p2(parse_chaos_spec("1:dropx2,corrupt"));
  EXPECT_TRUE(p2.take_drop());
  EXPECT_TRUE(p2.take_drop());
  EXPECT_FALSE(p2.take_drop());  // budget of 2 exhausted
  EXPECT_EQ(p2.drops_injected(), 2u);
  EXPECT_TRUE(p2.take_corrupt());
  EXPECT_FALSE(p2.take_corrupt());
  EXPECT_EQ(p2.corruptions_injected(), 1u);
  // Once a budget is gone, fresh schedules come back disarmed for it.
  const FaultSchedule s = p2.next_schedule();
  EXPECT_EQ(s.drop_at, 0u);
  EXPECT_EQ(s.corrupt_at, 0u);
}

TEST(ServeChaos, DefaultPlanAndConnArePassThrough) {
  FaultPlan plan;
  EXPECT_FALSE(plan.enabled());
  const FaultSchedule s = plan.next_schedule();
  EXPECT_EQ(s.drop_at, 0u);
  EXPECT_EQ(s.corrupt_at, 0u);
  EXPECT_FALSE(s.split);
  EXPECT_EQ(s.stall_at, 0u);

  SocketPair sp = make_socketpair();
  FaultConn tx(std::move(sp.parent));
  FaultConn rx(std::move(sp.child));
  const Frame f = frame(MsgType::CellDone, "cell 1\nkey k\n");
  tx.send_frame(f);
  const auto got = rx.recv_frame();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, f);
}

// --- fault injection over a real socketpair --------------------------------

TEST(ServeChaos, SendSideDropLooksLikePeerLossNeverCorruption) {
  FaultPlan plan(parse_chaos_spec("9:drop@3"));
  SocketPair sp = make_socketpair();
  FaultConn tx(std::move(sp.parent), plan.next_schedule());
  Conn rx = std::move(sp.child);

  const Frame f1 = frame(MsgType::CellDone, "cell 1\n");
  const Frame f2 = frame(MsgType::CellDone, "cell 2\n");
  tx.send_frame(f1);
  tx.send_frame(f2);
  EXPECT_THROW(tx.send_frame(frame(MsgType::CellDone, "cell 3\n")),
               TransportError);
  EXPECT_FALSE(tx.valid());
  EXPECT_EQ(plan.drops_injected(), 1u);

  // The receiver sees the pre-drop frames intact, then a *clean* EOF —
  // an injected drop is indistinguishable from a peer loss, and must
  // never manifest as framing corruption.
  EXPECT_EQ(rx.recv_frame(), f1);
  EXPECT_EQ(rx.recv_frame(), f2);
  EXPECT_FALSE(rx.recv_frame().has_value());
}

TEST(ServeChaos, RecvSideDropThrowsAfterTheFrameLands) {
  FaultPlan plan(parse_chaos_spec("4:drop@2"));
  SocketPair sp = make_socketpair();
  Conn tx = std::move(sp.parent);
  FaultConn rx(std::move(sp.child), plan.next_schedule());

  tx.send_frame(frame(MsgType::JobDone, "job 1\n"));
  tx.send_frame(frame(MsgType::JobDone, "job 2\n"));
  const auto first = rx.recv_frame();  // total frames crossed: 1 < 2
  ASSERT_TRUE(first.has_value());
  EXPECT_THROW((void)rx.recv_frame(), TransportError);
  EXPECT_FALSE(rx.valid());
  EXPECT_EQ(plan.drops_injected(), 1u);
}

TEST(ServeChaos, SplitDeliversEveryFrameIntact) {
  FaultPlan plan(parse_chaos_spec("5:split"));
  SocketPair sp = make_socketpair();
  FaultConn tx(std::move(sp.parent), plan.next_schedule());
  Conn rx = std::move(sp.child);

  std::mt19937_64 rng(20260808);
  std::vector<Frame> sent;
  for (int i = 0; i < 10; ++i) {
    Frame f;
    f.type = MsgType::CellDone;
    const std::size_t len = (i % 3 == 0) ? 0 : rng() % 600;
    for (std::size_t b = 0; b < len; ++b)
      f.payload.push_back(static_cast<char>(rng() % 256));
    tx.send_frame(f);
    sent.push_back(std::move(f));
  }
  for (const auto& f : sent) EXPECT_EQ(rx.recv_frame(), f);
}

TEST(ServeChaos, StallDelaysTheScheduledFrame) {
  FaultPlan plan(parse_chaos_spec("3:stall@1=30"));
  SocketPair sp = make_socketpair();
  FaultConn tx(std::move(sp.parent), plan.next_schedule());
  Conn rx = std::move(sp.child);
  const auto t0 = std::chrono::steady_clock::now();
  tx.send_frame(frame(MsgType::Ping, ""));
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
  EXPECT_GE(elapsed, 30);
  EXPECT_EQ(plan.stalls_injected(), 1u);
  EXPECT_TRUE(rx.recv_frame().has_value());
}

TEST(ServeChaos, QueueFlushDeliversInOrder) {
  SocketPair sp = make_socketpair();
  FaultConn tx(std::move(sp.parent));
  Conn rx = std::move(sp.child);
  const Frame a = frame(MsgType::CellDone, "cell 0\n");
  const Frame b = frame(MsgType::PlanDone, "cells 1\n");
  tx.queue_frame(a);
  tx.queue_frame(b);
  EXPECT_EQ(tx.queued_bytes(), 2 * kHeaderSize + a.payload.size() +
                                   b.payload.size());
  EXPECT_TRUE(tx.flush_queue());
  EXPECT_EQ(tx.queued_bytes(), 0u);
  EXPECT_EQ(rx.recv_frame(), a);
  EXPECT_EQ(rx.recv_frame(), b);
}

// --- seeded corruption campaign over the wire ------------------------------

// A campaign of seeded single-byte corruptions injected by FaultConn into
// a live socketpair stream: in every run the receiver must either (a)
// detect the damage (ProtocolError from the decoder, or TransportError
// from a partial frame at EOF when the flip landed in the length field),
// or (b) surface a frame that differs from what was sent (a flip in the
// unchecksummed type field — FrameDecoder passes unknown types through
// by design).  What must NEVER happen is a silently clean stream: every
// frame decoding equal to its original with no error raised.  Frames
// ahead of the corruption point must round-trip untouched.
TEST(ServeChaosFuzz, CorruptionCampaignNeverPassesSilently) {
  constexpr std::uint64_t seed_base = 20260809;
  constexpr int kRuns = 25;
  constexpr std::size_t kFrames = 6;
  for (int run = 0; run < kRuns; ++run) {
    const std::uint64_t seed = fuzz::derive_seed(seed_base, run);
    std::mt19937_64 rng(seed);
    const std::size_t corrupt_at = 1 + rng() % kFrames;
    FaultPlan plan(parse_chaos_spec(std::to_string(seed) + ":corrupt@" +
                                    std::to_string(corrupt_at)));
    SocketPair sp = make_socketpair();
    FaultConn tx(std::move(sp.parent), plan.next_schedule());
    Conn rx = std::move(sp.child);

    std::vector<Frame> sent;
    for (std::size_t i = 0; i < kFrames; ++i) {
      Frame f;
      f.type = MsgType::CellDone;
      const std::size_t len = rng() % 256;
      for (std::size_t b = 0; b < len; ++b)
        f.payload.push_back(static_cast<char>(rng() % 256));
      tx.send_frame(f);
      sent.push_back(std::move(f));
    }
    tx.close();
    EXPECT_EQ(plan.corruptions_injected(), 1u) << "run " << run;

    bool anomaly = false;
    std::size_t idx = 0;
    try {
      for (;;) {
        const auto f = rx.recv_frame();
        if (!f) break;  // EOF
        if (idx < sent.size() && *f == sent[idx]) {
          ++idx;
          continue;
        }
        anomaly = true;  // decoded, but not the frame that was sent
        ++idx;
      }
    } catch (const ProtocolError&) {
      anomaly = true;
    } catch (const TransportError&) {
      anomaly = true;
    }
    EXPECT_TRUE(anomaly) << "run " << run << " seed " << seed
                         << ": corrupted stream decoded clean";
    // Everything ahead of the corrupted frame round-tripped intact.
    EXPECT_GE(idx + 1, corrupt_at) << "run " << run << " seed " << seed;
  }
}

}  // namespace
