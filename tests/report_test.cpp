// Rendering of the full statistics report, plus parameterized cache
// geometry sweeps (LRU/eviction invariants must hold for every legal
// organization, not just Table 1's).
#include <gtest/gtest.h>

#include <tuple>

#include "compiler/compile.hpp"
#include "isa/assembler.hpp"
#include "machine/machine.hpp"
#include "machine/report.hpp"
#include "mem/cache.hpp"
#include "sim/functional.hpp"

namespace hidisc {
namespace {

TEST(Report, ContainsEverySectionForHidisc) {
  const auto prog = isa::assemble(R"(
.data
arr: .space 65536
.text
_start:
  la   r4, arr
  li   r5, 512
loop:
  ld   r6, 0(r4)
  add  r7, r7, r6
  addi r4, r4, 128
  addi r5, r5, -1
  bne  r5, r0, loop
  halt
)");
  const auto comp = compiler::compile(prog);
  sim::Functional fs(comp.separated);
  const auto ts = fs.run_trace();
  const auto r = machine::run_machine(comp.separated, ts,
                                      machine::Preset::HiDISC);
  const auto text = machine::render_report(r);
  for (const char* section :
       {"== execution ==", "== cores ==", "== memory ==", "== branches ==",
        "== queues ==", "== CMP ==", "AP", "LDQ", "IPC"})
    EXPECT_NE(text.find(section), std::string::npos) << section;
}

TEST(Report, OmitsCmpSectionWithoutCmp) {
  const auto prog = isa::assemble("li r1, 3\nhalt\n");
  const auto r = machine::run_machine(prog, machine::Preset::Superscalar);
  const auto text = machine::render_report(r);
  EXPECT_EQ(text.find("== CMP =="), std::string::npos);
  EXPECT_NE(text.find("main"), std::string::npos);
}

// ---- cache geometry sweeps -------------------------------------------------

class CacheGeometry
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(CacheGeometry, FillsToCapacityThenEvicts) {
  const auto [sets, block, assoc] = GetParam();
  mem::Cache c(mem::CacheConfig{sets, block, assoc, 1, "sweep"});
  const std::uint64_t lines = static_cast<std::uint64_t>(sets) * assoc;
  // Touch exactly `lines` distinct blocks: all must be resident.
  for (std::uint64_t i = 0; i < lines; ++i)
    c.access(i * block, mem::AccessType::Read, i, 0);
  EXPECT_EQ(c.stats().evictions, 0u);
  for (std::uint64_t i = 0; i < lines; ++i)
    EXPECT_TRUE(c.contains(i * block)) << i;
  // One more block evicts exactly one line.
  c.access(lines * block, mem::AccessType::Read, lines, 0);
  EXPECT_EQ(c.stats().evictions, 1u);
}

TEST_P(CacheGeometry, RepeatAccessAlwaysHits) {
  const auto [sets, block, assoc] = GetParam();
  mem::Cache c(mem::CacheConfig{sets, block, assoc, 1, "sweep"});
  c.access(0x1234, mem::AccessType::Read, 0, 0);
  for (int i = 1; i < 10; ++i)
    EXPECT_TRUE(c.access(0x1234, mem::AccessType::Read,
                         static_cast<std::uint64_t>(i) + 100, 0)
                    .hit);
  EXPECT_EQ(c.stats().read_misses, 1u);
}

TEST_P(CacheGeometry, LruVictimIsLeastRecentlyUsed) {
  const auto [sets, block, assoc] = GetParam();
  if (assoc < 2) GTEST_SKIP() << "needs associativity";
  mem::Cache c(mem::CacheConfig{sets, block, assoc, 1, "sweep"});
  // Fill one set, touch all but the first again, then overflow the set:
  // the untouched way must be the victim.
  const auto way_stride = static_cast<std::uint64_t>(sets) * block;
  std::uint64_t t = 0;
  for (int w = 0; w < assoc; ++w)
    c.access(w * way_stride, mem::AccessType::Read, ++t, 0);
  for (int w = 1; w < assoc; ++w)
    c.access(w * way_stride, mem::AccessType::Read, ++t, 0);
  c.access(assoc * way_stride, mem::AccessType::Read, ++t, 0);
  EXPECT_FALSE(c.contains(0));
  for (int w = 1; w <= assoc; ++w)
    EXPECT_TRUE(c.contains(w * way_stride)) << w;
}

std::string geometry_name(
    const ::testing::TestParamInfo<std::tuple<int, int, int>>& info) {
  return std::to_string(std::get<0>(info.param)) + "x" +
         std::to_string(std::get<1>(info.param)) + "x" +
         std::to_string(std::get<2>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    Organizations, CacheGeometry,
    ::testing::Values(std::make_tuple(2, 16, 1), std::make_tuple(2, 16, 2),
                      std::make_tuple(16, 32, 4), std::make_tuple(256, 32, 4),
                      std::make_tuple(64, 64, 2), std::make_tuple(1, 32, 8),
                      std::make_tuple(1024, 64, 4)),
    geometry_name);

}  // namespace
}  // namespace hidisc
