// Edge-case semantics of the functional simulator and assembler: shift
// boundaries, conversion truncation, page-crossing memory traffic,
// unsigned branches, LUI composition, and numeric branch targets.
#include <gtest/gtest.h>

#include "isa/assembler.hpp"
#include "sim/functional.hpp"

namespace hidisc::sim {
namespace {

using isa::assemble;

Functional run(const std::string& src) {
  static std::vector<isa::Program> keep;
  keep.push_back(assemble(src));
  Functional f(keep.back());
  f.run();
  return f;
}

TEST(FunctionalEdge, ShiftAmountsUseLowSixBits) {
  const auto f = run(
      "li r1, 1\n"
      "li r2, 64\n"
      "sll r3, r1, r2\n"   // 64 & 63 == 0: unshifted
      "li r4, 65\n"
      "sll r5, r1, r4\n"   // 65 & 63 == 1
      "slli r6, r1, 63\n"
      "halt\n");
  EXPECT_EQ(f.reg(3), 1);
  EXPECT_EQ(f.reg(5), 2);
  EXPECT_EQ(static_cast<std::uint64_t>(f.reg(6)), 1ull << 63);
}

TEST(FunctionalEdge, ArithmeticShiftKeepsSign) {
  const auto f = run(
      "li r1, -1024\n"
      "srai r2, r1, 3\n"
      "srli r3, r1, 60\n"
      "halt\n");
  EXPECT_EQ(f.reg(2), -128);
  EXPECT_EQ(f.reg(3), 15);  // logical shift of the sign-extended pattern
}

TEST(FunctionalEdge, LuiShiftsBySixteen) {
  const auto f = run(
      "lui r1, 0x12\n"
      "ori r2, r1, 0x34\n"
      "halt\n");
  EXPECT_EQ(f.reg(1), 0x120000);
  EXPECT_EQ(f.reg(2), 0x120034);
}

TEST(FunctionalEdge, CvtfiTruncatesTowardZero) {
  const auto f = run(
      ".data\na: .double 2.99\nb: .double -2.99\n.text\n"
      "fld f1, a\ncvtfi r1, f1\n"
      "fld f2, b\ncvtfi r2, f2\n"
      "halt\n");
  EXPECT_EQ(f.reg(1), 2);
  EXPECT_EQ(f.reg(2), -2);
}

TEST(FunctionalEdge, UnsignedBranchesTreatNegativeAsHuge) {
  const auto f = run(
      "li r1, -1\n"
      "li r2, 1\n"
      "bltu r1, r2, small\n"  // 0xfff... < 1 is false
      "li r3, 100\n"
      "j end\n"
      "small: li r3, 7\n"
      "end: halt\n");
  EXPECT_EQ(f.reg(3), 100);
}

TEST(FunctionalEdge, MisalignedAndPageCrossingLoads) {
  const auto f = run(
      ".data\nbuf: .space 16\n.text\n"
      "la r1, buf\n"
      "li r2, 0x0123456789abcdef\n"
      "sd r2, 3(r1)\n"       // misaligned store
      "ld r3, 3(r1)\n"
      "lw r4, 5(r1)\n"
      "halt\n");
  EXPECT_EQ(f.reg(3), 0x0123456789abcdef);
  EXPECT_EQ(f.reg(4), 0x456789ab);  // bytes 5..8 of the store
}

TEST(FunctionalEdge, PageBoundaryStoreLoad) {
  // kDataBase is page-aligned; place a value across the first page edge.
  const auto page = sim::Memory::kPageSize;
  std::string src = ".data\nbuf: .space " + std::to_string(page + 16) +
                    "\n.text\n"
                    "la r1, buf\n"
                    "li r2, -2\n"
                    "sd r2, " + std::to_string(page - 4) + "(r1)\n"
                    "ld r3, " + std::to_string(page - 4) + "(r1)\n"
                    "halt\n";
  const auto f = run(src);
  EXPECT_EQ(f.reg(3), -2);
}

TEST(FunctionalEdge, NumericBranchTargetsAssemble) {
  const auto f = run(
      "li r1, 3\n"        // 0
      "addi r1, r1, -1\n" // 1
      "bne r1, r0, 1\n"   // 2: numeric target
      "halt\n");
  EXPECT_EQ(f.reg(1), 0);
}

TEST(FunctionalEdge, SelfModifyingDataStructuresStayCoherent) {
  // Write a pointer into memory, then chase it.
  const auto f = run(
      ".data\ncell: .space 16\nval: .dword 77\n.text\n"
      "la r1, cell\n"
      "la r2, val\n"
      "sd r2, 0(r1)\n"
      "ld r3, 0(r1)\n"
      "ld r4, 0(r3)\n"
      "halt\n");
  EXPECT_EQ(f.reg(4), 77);
}

TEST(FunctionalEdge, FsqrtAndFmovChainExactly) {
  const auto f = run(
      ".data\na: .double 9.0\n.text\n"
      "fld f1, a\n"
      "fsqrt f2, f1\n"
      "fmov f3, f2\n"
      "fmul f4, f3, f3\n"
      "halt\n");
  EXPECT_EQ(f.freg(2), 3.0);
  EXPECT_EQ(f.freg(4), 9.0);
}

TEST(FunctionalEdge, RemSignFollowsDividend) {
  const auto f = run(
      "li r1, -7\nli r2, 3\n"
      "rem r3, r1, r2\n"
      "li r4, 7\nli r5, -3\n"
      "rem r6, r4, r5\n"
      "halt\n");
  EXPECT_EQ(f.reg(3), -1);
  EXPECT_EQ(f.reg(6), 1);
}

TEST(FunctionalEdge, StepInterfaceMatchesRun) {
  auto prog = assemble("li r1, 10\nloop: addi r1, r1, -1\n"
                       "bne r1, r0, loop\nhalt\n");
  Functional a(prog), b(prog);
  a.run();
  while (b.step()) {
  }
  EXPECT_EQ(a.instructions(), b.instructions());
  EXPECT_EQ(a.state_digest(), b.state_digest());
}

}  // namespace
}  // namespace hidisc::sim
