// Unit tests for the crash-recovery layers under the chaos-hardened
// experiment service: the append-only checksummed job journal (record /
// replay round-trips, torn-tail and corrupt-line quarantine, the
// single-writer flock, re-record-after-truncate) and the shared
// forensic-quarantine naming.  The end-to-end kill-restart-resume
// scenario lives in serve_e2e_test.cpp; these tests pin the journal's
// byte-level contract so that scenario's recovery is explainable when it
// regresses.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "diag/quarantine.hpp"
#include "lab/serialize.hpp"
#include "serve/journal.hpp"

namespace fs = std::filesystem;

namespace {

using namespace hidisc;
using namespace hidisc::serve;

struct TempDir {
  std::string path;
  TempDir() {
    char tmpl[] = "/tmp/hiserve-journal-XXXXXX";
    path = ::mkdtemp(tmpl);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

PlanRequest sample_request() {
  PlanRequest req;
  req.plan = "fig10";
  req.scale = "test";
  req.watchdog = 500000;
  req.lockstep = true;
  req.refresh = false;
  return req;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void append_raw(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::app);
  out << bytes;
}

// A journal line with a *valid* checksum, as the daemon would write it —
// for forging records past a damage boundary.
std::string good_line(const std::string& payload) {
  char sum[20];
  std::snprintf(sum, sizeof sum, "%016llx",
                static_cast<unsigned long long>(lab::fnv1a64(payload)));
  return "HSJL1 " + std::string(sum) + " " + payload + "\n";
}

// --- record / replay round-trips -------------------------------------------

TEST(ServeJournal, IncompletePlanRoundTrips) {
  TempDir dir;
  const std::string path = dir.path + "/journal.hsjl";
  const PlanRequest req = sample_request();
  {
    JobJournal j(path);
    ASSERT_TRUE(j.active());
    j.record_plan("tokA-1", req, 5);
    j.record_cell("tokA-1", 0);
    j.record_cell("tokA-1", 2);
  }
  const JournalReplay r = JobJournal::replay(path);
  EXPECT_EQ(r.records, 3u);
  EXPECT_EQ(r.bad_bytes, 0u);
  EXPECT_TRUE(r.quarantine.empty());
  ASSERT_EQ(r.plans.size(), 1u);
  const JournalPlan& p = r.plans[0];
  EXPECT_EQ(p.token, "tokA-1");
  EXPECT_EQ(p.cells, 5u);
  EXPECT_FALSE(p.complete);
  EXPECT_EQ(p.done_count(), 2u);
  EXPECT_TRUE(p.done[0]);
  EXPECT_FALSE(p.done[1]);
  EXPECT_TRUE(p.done[2]);
  // The request survives field-for-field: recovery re-materializes the
  // plan from exactly what the client submitted.
  EXPECT_EQ(p.req.plan, req.plan);
  EXPECT_EQ(p.req.scale, req.scale);
  EXPECT_EQ(p.req.watchdog, req.watchdog);
  EXPECT_EQ(p.req.lockstep, req.lockstep);
  EXPECT_EQ(p.req.refresh, req.refresh);
}

TEST(ServeJournal, DoneRecordMarksComplete) {
  TempDir dir;
  const std::string path = dir.path + "/j.hsjl";
  {
    JobJournal j(path);
    j.record_plan("t1", sample_request(), 2);
    j.record_cell("t1", 0);
    j.record_cell("t1", 1);
    j.record_done("t1");
  }
  const JournalReplay r = JobJournal::replay(path);
  EXPECT_EQ(r.records, 4u);
  ASSERT_EQ(r.plans.size(), 1u);
  EXPECT_TRUE(r.plans[0].complete);
  EXPECT_EQ(r.plans[0].done_count(), 2u);
}

TEST(ServeJournal, OutOfRangeCellIndexIsToleratedNotFatal) {
  // A cell record past the plan's cell count (version drift between the
  // writer and this reader) parses as a valid record whose bit is simply
  // dropped — forward damage containment without data loss.
  TempDir dir;
  const std::string path = dir.path + "/j.hsjl";
  {
    JobJournal j(path);
    j.record_plan("t1", sample_request(), 4);
    j.record_cell("t1", 99);
  }
  const JournalReplay r = JobJournal::replay(path);
  EXPECT_EQ(r.records, 2u);
  EXPECT_EQ(r.bad_bytes, 0u);
  ASSERT_EQ(r.plans.size(), 1u);
  EXPECT_EQ(r.plans[0].done_count(), 0u);
}

TEST(ServeJournal, MissingFileIsAnEmptyReplay) {
  const JournalReplay r = JobJournal::replay("/no/such/dir/journal.hsjl");
  EXPECT_TRUE(r.plans.empty());
  EXPECT_EQ(r.records, 0u);
  EXPECT_EQ(r.bad_bytes, 0u);
}

TEST(ServeJournal, ReRecordedPlanIsAuthoritative) {
  // A daemon that recovers a plan re-records it (and the done cells it
  // trusts); a second crash must replay the *newest* record, not merge
  // with the stale one.
  TempDir dir;
  const std::string path = dir.path + "/j.hsjl";
  {
    JobJournal j(path);
    j.record_plan("t1", sample_request(), 4);
    j.record_cell("t1", 0);
    j.record_plan("t1", sample_request(), 4);  // re-record: resets done
    j.record_cell("t1", 3);
  }
  const JournalReplay r = JobJournal::replay(path);
  ASSERT_EQ(r.plans.size(), 1u);
  EXPECT_EQ(r.plans[0].done_count(), 1u);
  EXPECT_FALSE(r.plans[0].done[0]);  // pre-re-record bit did not survive
  EXPECT_TRUE(r.plans[0].done[3]);
}

// --- damage handling -------------------------------------------------------

TEST(ServeJournal, TornTailIsQuarantinedAndTruncated) {
  TempDir dir;
  const std::string path = dir.path + "/j.hsjl";
  {
    JobJournal j(path);
    j.record_plan("t1", sample_request(), 3);
    j.record_cell("t1", 0);
  }
  const auto good_size = fs::file_size(path);
  append_raw(path, "HSJL1 12ab");  // SIGKILL mid-append: no newline

  const JournalReplay r = JobJournal::replay(path);
  EXPECT_EQ(r.records, 2u);  // every intact record survived
  EXPECT_EQ(r.bad_bytes, 10u);
  ASSERT_FALSE(r.quarantine.empty());
  EXPECT_EQ(slurp(r.quarantine), "HSJL1 12ab");
  // The journal itself was truncated back to the last good record, so
  // future appends never interleave with garbage...
  EXPECT_EQ(fs::file_size(path), good_size);
  // ...and a second replay is clean.
  const JournalReplay again = JobJournal::replay(path);
  EXPECT_EQ(again.records, 2u);
  EXPECT_EQ(again.bad_bytes, 0u);
  ASSERT_EQ(again.plans.size(), 1u);
  EXPECT_TRUE(again.plans[0].done[0]);
}

TEST(ServeJournal, CorruptLineIsADamageBoundary) {
  // A line whose checksum fails ends the trustworthy prefix: records
  // beyond it — even ones that checksum fine — are quarantined with it,
  // because the stream offset is no longer trustworthy (same poisoning
  // discipline as the wire FrameDecoder).
  TempDir dir;
  const std::string path = dir.path + "/j.hsjl";
  {
    JobJournal j(path);
    j.record_plan("t1", sample_request(), 3);
  }
  const auto good_size = fs::file_size(path);
  const std::string forged =
      "HSJL1 0000000000000000 cell t1 1\n" + good_line("cell t1 2");
  append_raw(path, forged);

  const JournalReplay r = JobJournal::replay(path);
  EXPECT_EQ(r.records, 1u);
  EXPECT_EQ(r.bad_bytes, forged.size());
  ASSERT_FALSE(r.quarantine.empty());
  EXPECT_EQ(slurp(r.quarantine), forged);
  EXPECT_EQ(fs::file_size(path), good_size);
  ASSERT_EQ(r.plans.size(), 1u);
  EXPECT_EQ(r.plans[0].done_count(), 0u);  // neither cell bit applied
}

TEST(ServeJournal, UnknownTokenRecordIsDamage) {
  // A checksummed-valid cell record naming a token with no plan line
  // means the plan record was lost (quarantined earlier, or version
  // drift): stop at the last line we can fully interpret.
  TempDir dir;
  const std::string path = dir.path + "/j.hsjl";
  {
    JobJournal j(path);
    j.record_cell("ghost", 0);
  }
  const JournalReplay r = JobJournal::replay(path);
  EXPECT_EQ(r.records, 0u);
  EXPECT_GT(r.bad_bytes, 0u);
  EXPECT_TRUE(r.plans.empty());
  EXPECT_EQ(fs::file_size(path), 0u);
}

// --- writer lock and lifecycle ---------------------------------------------

TEST(ServeJournal, SecondWriterIsExcludedNotFatal) {
  TempDir dir;
  const std::string path = dir.path + "/j.hsjl";
  JobJournal first(path);
  ASSERT_TRUE(first.active());
  first.record_plan("t1", sample_request(), 1);

  JobJournal second(path);  // two daemons, one journal: the flock holds
  EXPECT_FALSE(second.active());
  second.record_plan("t2", sample_request(), 1);  // silently dropped

  const JournalReplay r = JobJournal::replay(path);
  ASSERT_EQ(r.plans.size(), 1u);
  EXPECT_EQ(r.plans[0].token, "t1");

  first = JobJournal{};  // releases the lock with the fd
  JobJournal third(path);
  EXPECT_TRUE(third.active());
}

TEST(ServeJournal, TruncateAllThenReRecordKeepsTheLogBounded) {
  TempDir dir;
  const std::string path = dir.path + "/j.hsjl";
  JobJournal j(path);
  j.record_plan("old", sample_request(), 8);
  for (std::size_t i = 0; i < 8; ++i) j.record_cell("old", i);
  j.record_done("old");
  // Startup replay consumed the log: recovered state is re-recorded
  // fresh, so the journal never grows across restarts.
  j.truncate_all();
  j.record_plan("new", sample_request(), 2);
  j.record_cell("new", 1);

  const JournalReplay r = JobJournal::replay(path);
  EXPECT_EQ(r.records, 2u);
  ASSERT_EQ(r.plans.size(), 1u);
  EXPECT_EQ(r.plans[0].token, "new");
  EXPECT_TRUE(r.plans[0].done[1]);
}

TEST(ServeJournal, EmptyPathIsInactive) {
  JobJournal j{std::string()};
  EXPECT_FALSE(j.active());
  j.record_plan("t", sample_request(), 1);  // must be a safe no-op
}

// --- quarantine naming -----------------------------------------------------

TEST(DiagQuarantine, PathsAreUniquePerCall) {
  const std::string a = diag::quarantine_path_for("/tmp/x/journal.hsjl");
  const std::string b = diag::quarantine_path_for("/tmp/x/journal.hsjl");
  EXPECT_NE(a, b);
  EXPECT_NE(a.find("/tmp/x/journal.hsjl.corrupt."), std::string::npos) << a;
}

TEST(DiagQuarantine, FileMoveKeepsTheSpecimen) {
  TempDir dir;
  const std::string victim = dir.path + "/damaged.bin";
  append_raw(victim, "specimen-bytes");
  const std::string dest = diag::quarantine_file(victim);
  ASSERT_FALSE(dest.empty());
  EXPECT_FALSE(fs::exists(victim));
  EXPECT_EQ(slurp(dest), "specimen-bytes");
}

}  // namespace
