// Sparse-memory substrate tests: typed access, page crossing, zero-fill,
// bulk transfer, and digests.
#include <gtest/gtest.h>

#include "sim/memory.hpp"

namespace hidisc::sim {
namespace {

TEST(Memory, UntouchedReadsAreZero) {
  Memory m;
  EXPECT_EQ(m.read<std::uint64_t>(0xdeadbeef), 0u);
  EXPECT_EQ(m.allocated_pages(), 0u);
}

TEST(Memory, TypedRoundTrips) {
  Memory m;
  m.write<std::uint8_t>(0x10, 0xab);
  m.write<std::uint16_t>(0x20, 0x1234);
  m.write<std::uint32_t>(0x30, 0xdeadbeef);
  m.write<std::uint64_t>(0x40, 0x0123456789abcdefull);
  m.write<double>(0x50, 3.25);
  EXPECT_EQ(m.read<std::uint8_t>(0x10), 0xab);
  EXPECT_EQ(m.read<std::uint16_t>(0x20), 0x1234);
  EXPECT_EQ(m.read<std::uint32_t>(0x30), 0xdeadbeefu);
  EXPECT_EQ(m.read<std::uint64_t>(0x40), 0x0123456789abcdefull);
  EXPECT_EQ(m.read<double>(0x50), 3.25);
}

TEST(Memory, LittleEndianLayout) {
  Memory m;
  m.write<std::uint32_t>(0, 0x04030201);
  EXPECT_EQ(m.read_u8(0), 1);
  EXPECT_EQ(m.read_u8(3), 4);
}

TEST(Memory, PageCrossingAccess) {
  Memory m;
  const std::uint64_t boundary = Memory::kPageSize;
  m.write<std::uint64_t>(boundary - 4, 0x1122334455667788ull);
  EXPECT_EQ(m.read<std::uint64_t>(boundary - 4), 0x1122334455667788ull);
  EXPECT_EQ(m.allocated_pages(), 2u);
  // Halves land on both pages.
  EXPECT_EQ(m.read<std::uint32_t>(boundary - 4), 0x55667788u);
  EXPECT_EQ(m.read<std::uint32_t>(boundary), 0x11223344u);
}

TEST(Memory, BulkReadWrite) {
  Memory m;
  std::uint8_t src[300];
  for (int i = 0; i < 300; ++i) src[i] = static_cast<std::uint8_t>(i);
  m.write_bytes(Memory::kPageSize - 100, src, sizeof src);
  std::uint8_t dst[300] = {};
  m.read_bytes(Memory::kPageSize - 100, dst, sizeof dst);
  EXPECT_EQ(std::memcmp(src, dst, sizeof src), 0);
}

TEST(Memory, DigestIsContentAddressed) {
  Memory a, b;
  a.write<std::uint64_t>(0x1000, 42);
  b.write<std::uint64_t>(0x1000, 42);
  EXPECT_EQ(a.digest(), b.digest());
  b.write<std::uint64_t>(0x1008, 1);
  EXPECT_NE(a.digest(), b.digest());
}

TEST(Memory, DigestDependsOnAddressNotJustContent) {
  Memory a, b;
  a.write<std::uint64_t>(0x1000, 42);
  b.write<std::uint64_t>(0x2000, 42);  // different page, same bytes
  EXPECT_NE(a.digest(), b.digest());
}

}  // namespace
}  // namespace hidisc::sim
